package server

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
	"numarck/internal/core"
)

// testOptions are the daemon defaults every serve test runs with;
// the byte-identity checks re-run the library pipeline with exactly
// these.
func testOptions(t *testing.T) core.Options {
	t.Helper()
	strategy, err := core.ParseStrategy("clustering")
	if err != nil {
		t.Fatal(err)
	}
	return core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: strategy}
}

// testChunkConfig keeps chunks small so a few thousand points span
// several pipeline chunks.
func testChunkConfig() chunk.Config {
	return chunk.Config{ChunkPoints: 512, Workers: 2}
}

// newTestServer builds a Server over a temp root and mounts it on an
// httptest listener.
func newTestServer(t *testing.T, capacity int64, admitWait time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Root:          t.TempDir(),
		Opt:           testOptions(t),
		Chunk:         testChunkConfig(),
		CapacityBytes: capacity,
		AdmitWait:     admitWait,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// seriesValues is the deterministic simulation state at one iteration:
// a smooth field drifting a little each step, with a few points moving
// far outside the error bound so every delta carries exact values too.
func seriesValues(iter, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 100*math.Sin(float64(i)*0.01) + 0.05*float64(iter)
		if i%97 == 0 {
			vals[i] *= 1 + 0.5*float64(iter)
		}
	}
	return vals
}

// floatBytes renders values as the wire format: raw little-endian f64.
func floatBytes(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(bits >> (8 * b))
		}
	}
	return buf
}

// bitsEqual compares two float slices for exact bit identity.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestServeSmoke drives the acceptance scenario end to end over real
// HTTP: a 3-delta chain pushed as raw values, byte-identity of every
// committed file against the library pipeline run locally, bit-exact
// reconstructions back out, /metrics reconciling with the on-disk
// store, and ?recover=1 salvaging injected corruption.
func TestServeSmoke(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	c := &Client{Base: ts.URL, Tenant: "sim0"}
	const series, n, iters = "dens", 4096, 4
	opt, err := testOptions(t).Validate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testChunkConfig()

	// Push the chain and mirror it locally: wantRaw[i] is what the
	// daemon should have committed for iteration i, rec[i] the
	// reconstruction a reader should get back.
	wantRaw := make([][]byte, iters)
	rec := make([][]float64, iters)
	for i := 0; i < iters; i++ {
		vals := seriesValues(i, n)
		cr, err := c.Push(series, i, bytes.NewReader(floatBytes(vals)), nil)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if i == 0 {
			if cr.Kind != "full" {
				t.Fatalf("iteration 0 committed as %q, want full", cr.Kind)
			}
			wantRaw[i], err = checkpoint.MarshalFull(series, i, vals)
			if err != nil {
				t.Fatal(err)
			}
			rec[i] = vals
		} else {
			if cr.Kind != "delta" {
				t.Fatalf("iteration %d committed as %q, want auto delta", i, cr.Kind)
			}
			var buf bytes.Buffer
			if _, err := chunk.EncodeDeltaV2(&buf, series, i, chunk.SliceSource(rec[i-1]), chunk.SliceSource(vals), opt, cfg); err != nil {
				t.Fatalf("local encode %d: %v", i, err)
			}
			wantRaw[i] = buf.Bytes()
			d, err := checkpoint.OpenDeltaV2(bytes.NewReader(wantRaw[i]), int64(len(wantRaw[i])))
			if err != nil {
				t.Fatal(err)
			}
			rec[i], err = d.Decode(rec[i-1], 1)
			if err != nil {
				t.Fatal(err)
			}
		}
		if cr.FileBytes != int64(len(wantRaw[i])) {
			t.Errorf("iteration %d: commit reported %d bytes, local pipeline wrote %d", i, cr.FileBytes, len(wantRaw[i]))
		}
	}

	// Byte identity: the daemon's committed files are exactly what the
	// library path produces.
	for i := 0; i < iters; i++ {
		raw, kind, err := c.FetchRaw(series, i)
		if err != nil {
			t.Fatalf("fetch raw %d: %v", i, err)
		}
		wantKind := "delta"
		if i == 0 {
			wantKind = "full"
		}
		if kind != wantKind {
			t.Errorf("iteration %d kind = %q, want %q", i, kind, wantKind)
		}
		if !bytes.Equal(raw, wantRaw[i]) {
			t.Errorf("iteration %d: wire bytes differ from library pipeline (%d vs %d bytes)", i, len(raw), len(wantRaw[i]))
		}
	}

	// Reconstructions come back bit-exact against the local replay.
	for i := 0; i < iters; i++ {
		var got bytes.Buffer
		points, partial, err := c.Fetch(series, i, &got, false)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if partial != nil {
			t.Fatalf("fetch %d reported damage on a healthy store", i)
		}
		if points != n {
			t.Fatalf("fetch %d: %d points, want %d", i, points, n)
		}
		if !bytes.Equal(got.Bytes(), floatBytes(rec[i])) {
			t.Errorf("iteration %d: reconstruction differs from library decode", i)
		}
	}

	// Chain report: four entries whose journaled sizes match the files,
	// a fresh index, and a clean deep verify.
	sc, err := c.SeriesChain(series, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Entries) != iters || sc.LatestRestorable != iters-1 {
		t.Fatalf("chain: %d entries latest %d, want %d / %d", len(sc.Entries), sc.LatestRestorable, iters, iters-1)
	}
	if !sc.Verified || len(sc.Issues) != 0 {
		t.Fatalf("deep verify on healthy store: verified=%v issues=%v", sc.Verified, sc.Issues)
	}
	tenantDir := filepath.Join(s.cfg.Root, "sim0")
	var onDisk int64
	for i, e := range sc.Entries {
		fi, err := os.Stat(filepath.Join(tenantDir, e.Name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != e.Bytes || e.Bytes != int64(len(wantRaw[i])) {
			t.Errorf("entry %d: journal %d bytes, disk %d, pipeline %d", i, e.Bytes, fi.Size(), len(wantRaw[i]))
		}
		onDisk += fi.Size()
	}

	// /metrics reconciliation: the tenant's bytes_written counter is
	// exactly the bytes sitting in its chain on disk.
	mr, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := mr.Tenants["sim0"]
	if !ok {
		t.Fatal("metrics missing tenant sim0")
	}
	if got := snap.Counters["bytes_written"]; got != onDisk {
		t.Errorf("tenant bytes_written = %d, on-disk chain = %d", got, onDisk)
	}
	if got := mr.Process.Counters["bytes_written"]; got != onDisk {
		t.Errorf("process bytes_written = %d, on-disk chain = %d", got, onDisk)
	}

	// Restart points a resuming application at the newest iteration.
	rr, err := c.RestartPoint(series)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Iteration != iters-1 {
		t.Fatalf("restart point = %d, want %d", rr.Iteration, iters-1)
	}

	// Raw commit path: replaying iteration 0's exact file bytes into a
	// second series round-trips bit-exact.
	if _, err := c.PushRaw("dens2", 0, bytes.Replace(wantRaw[0], []byte(series), []byte("den2"), 1)); err == nil {
		t.Fatal("raw commit with mismatched embedded variable should be rejected")
	}
	full2, err := checkpoint.MarshalFull("dens2", 0, rec[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushRaw("dens2", 0, full2); err != nil {
		t.Fatalf("raw commit: %v", err)
	}
	var got2 bytes.Buffer
	if _, _, err := c.Fetch("dens2", 0, &got2, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Bytes(), floatBytes(rec[0])) {
		t.Error("raw-committed full does not round-trip")
	}

	// Inject silent corruption into the newest delta, the same way the
	// storage tests model media rot, and salvage it over the wire.
	last := sc.Entries[iters-1]
	path := filepath.Join(tenantDir, last.Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)*3/5] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Fail-closed read refuses with the corrupt-store class.
	var apiErr *APIError
	if _, _, err := c.Fetch(series, iters-1, &bytes.Buffer{}, false); !errors.As(err, &apiErr) || apiErr.Class != "corrupt_store" {
		t.Fatalf("read over corruption = %v, want corrupt_store", err)
	}

	// ?verify=1 surfaces the damage in the chain report.
	sc2, err := c.SeriesChain(series, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc2.Issues) == 0 {
		t.Error("deep verify missed injected corruption")
	}

	// ?recover=1 salvages: healthy chunks decode to the true values,
	// lost ranges keep the previous iteration's, and the losses are
	// reported exactly.
	var salvaged bytes.Buffer
	points, partial, err := c.Fetch(series, iters-1, &salvaged, true)
	if err != nil {
		t.Fatalf("salvage fetch: %v", err)
	}
	if partial == nil || partial.LostPoints == 0 || len(partial.Lost) == 0 {
		t.Fatalf("salvage reported no damage: %+v", partial)
	}
	if points != n {
		t.Fatalf("salvage returned %d points, want %d", points, n)
	}
	gotVals := make([]float64, n)
	for i := range gotVals {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(salvaged.Bytes()[8*i+b]) << (8 * b)
		}
		gotVals[i] = math.Float64frombits(bits)
	}
	lost := make([]bool, n)
	for _, lr := range partial.Lost {
		for i := lr.Lo; i < lr.Hi && i < n; i++ {
			lost[i] = true
		}
	}
	for i := range gotVals {
		want := rec[iters-1][i]
		if lost[i] {
			want = rec[iters-2][i]
		}
		if math.Float64bits(gotVals[i]) != math.Float64bits(want) {
			t.Fatalf("salvaged point %d (lost=%v) = %v, want %v", i, lost[i], gotVals[i], want)
		}
	}
}

// TestServeAdmission exercises the memory governor over the wire: a
// full governor answers 429 + Retry-After instead of queueing forever,
// releasing capacity lets the same request through, and requests
// heavier than total capacity get a permanent 413.
func TestServeAdmission(t *testing.T) {
	const capacity = 4096
	s, ts := newTestServer(t, capacity, 50*time.Millisecond)
	c := &Client{Base: ts.URL, Tenant: "sim0"}
	vals := seriesValues(0, 64) // full-commit weight 2*512+64 = 1088

	// Occupy the whole governor, then push: the request must be turned
	// away with the over-capacity class and a retry hint, not held.
	hold, err := s.Governor().Acquire(context.Background(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	_, err = c.Push("dens", 0, bytes.NewReader(floatBytes(vals)), nil)
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Class != "over_capacity" {
		t.Fatalf("push against a full governor = %v, want 429 over_capacity", err)
	}
	if apiErr.RetryAfterSec <= 0 {
		t.Error("429 carried no retry hint")
	}
	hold()

	// Same request after release succeeds.
	if _, err := c.Push("dens", 0, bytes.NewReader(floatBytes(vals)), nil); err != nil {
		t.Fatalf("push after release: %v", err)
	}

	// A body whose admission weight exceeds total capacity can never be
	// admitted: 413, not 429.
	big := seriesValues(1, 1024) // full-commit weight 2*8192+64 > 4096
	q := url.Values{}
	q.Set("kind", "full")
	_, err = c.Push("dens", 1, bytes.NewReader(floatBytes(big)), q)
	if !errors.As(err, &apiErr) || apiErr.Status != 413 || apiErr.Class != "too_large" {
		t.Fatalf("oversized push = %v, want 413 too_large", err)
	}

	// A per-request budget the pipeline cannot fit inside is the other
	// 413: the chunk resolver's ErrBudget surfaces as budget_exceeded.
	q = url.Values{}
	q.Set("budget", "1")
	_, err = c.Push("dens", 1, bytes.NewReader(floatBytes(seriesValues(1, 64))), q)
	if !errors.As(err, &apiErr) || apiErr.Status != 413 || apiErr.Class != "budget_exceeded" {
		t.Fatalf("unfittable budget = %v, want 413 budget_exceeded", err)
	}
}

// TestServeLocked checks the 423 path: when another process holds a
// tenant's writer lock, commits are refused with the holder's PID and
// lock age, and succeed once the lock is released.
func TestServeLocked(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	c := &Client{Base: ts.URL, Tenant: "sim0"}
	if _, err := c.Push("dens", 0, bytes.NewReader(floatBytes(seriesValues(0, 64))), nil); err != nil {
		t.Fatal(err)
	}

	// The test process takes the writer lock, standing in for a
	// sidecar CLI run against the same store.
	st, err := checkpoint.Open(filepath.Join(s.cfg.Root, "sim0"))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	_, err = c.Push("dens", 1, bytes.NewReader(floatBytes(seriesValues(1, 64))), nil)
	if !errors.As(err, &apiErr) || apiErr.Status != 423 || apiErr.Class != "store_locked" {
		t.Fatalf("push against held lock = %v, want 423 store_locked", err)
	}
	if apiErr.HolderPID != os.Getpid() {
		t.Errorf("holder pid = %d, want this process %d", apiErr.HolderPID, os.Getpid())
	}
	if apiErr.HolderAgeMs < 0 {
		t.Errorf("holder age = %dms", apiErr.HolderAgeMs)
	}

	// Reads stay lock-free while the writer lock is held.
	if _, _, err := c.Fetch("dens", 0, &bytes.Buffer{}, false); err != nil {
		t.Fatalf("lock-free read under held lock: %v", err)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push("dens", 1, bytes.NewReader(floatBytes(seriesValues(1, 64))), nil); err != nil {
		t.Fatalf("push after lock release: %v", err)
	}
}

// TestServeDrain checks the HTTP half of graceful shutdown: after
// StartDrain, readiness flips and new API work is refused with 503
// while liveness stays green.
func TestServeDrain(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	c := &Client{Base: ts.URL, Tenant: "sim0"}
	if _, err := c.Push("dens", 0, bytes.NewReader(floatBytes(seriesValues(0, 64))), nil); err != nil {
		t.Fatal(err)
	}

	s.StartDrain()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; status is the signal
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; status is the signal
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz while draining = %d, want 200", resp.StatusCode)
	}
	var apiErr *APIError
	_, err = c.Push("dens", 1, bytes.NewReader(floatBytes(seriesValues(1, 64))), nil)
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Class != "draining" {
		t.Fatalf("push while draining = %v, want 503 draining", err)
	}
	mr, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Draining {
		t.Error("metrics does not report draining")
	}
}

// TestServeValidation checks the 400/404 edges of the API surface.
func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, 0, 0)
	c := &Client{Base: ts.URL, Tenant: "sim0"}
	var apiErr *APIError

	// A body that is not a whole float64 array.
	_, err := c.Push("dens", 0, bytes.NewReader([]byte{1, 2, 3}), nil)
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("ragged body = %v, want 400", err)
	}

	// An invalid series name (escaped, so it survives mux path
	// cleaning and reaches the store's naming rules).
	_, err = c.Push("has space", 0, bytes.NewReader(floatBytes(seriesValues(0, 8))), nil)
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bad series = %v, want 400", err)
	}

	// An invalid tenant name.
	bad := &Client{Base: ts.URL, Tenant: ".hidden"}
	_, err = bad.Push("dens", 0, bytes.NewReader(floatBytes(seriesValues(0, 8))), nil)
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bad tenant = %v, want 400", err)
	}

	// A read from a series that was never written.
	_, _, err = c.Fetch("ghost", 7, &bytes.Buffer{}, false)
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Class != "not_found" {
		t.Fatalf("missing checkpoint = %v, want 404 not_found", err)
	}

	// A delta that would leave a chain gap.
	if _, err := c.Push("dens", 0, bytes.NewReader(floatBytes(seriesValues(0, 64))), nil); err != nil {
		t.Fatal(err)
	}
	q := url.Values{}
	q.Set("kind", "delta")
	_, err = c.Push("dens", 5, bytes.NewReader(floatBytes(seriesValues(5, 64))), q)
	if !errors.As(err, &apiErr) || apiErr.Status == 201 {
		t.Fatalf("gapped delta = %v, want error", err)
	}
}
