package server

// Commit idempotency end-to-end: retried commits of the same payload
// replay instead of double-applying (for value, raw, and delta
// commits), a different payload for a taken iteration is a 409
// conflict, and the operator-facing error rendering carries actionable
// hints.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"numarck/internal/obs"
)

// TestCommitReplay pushes identical payloads twice per iteration and
// asserts the second answer is a replay: same commit facts, Replayed
// set, exactly one journal add per file, and the replay counter bumped.
func TestCommitReplay(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	c := &Client{Base: ts.URL, Tenant: "t0"}

	// Iteration 0 lands as a full, iteration 1 as a delta; both replay.
	for iter := 0; iter <= 1; iter++ {
		body := floatBytes(seriesValues(iter, 256))
		first, err := c.Push("v", iter, bytes.NewReader(body), nil)
		if err != nil {
			t.Fatalf("iter %d first push: %v", iter, err)
		}
		if first.Replayed {
			t.Fatalf("iter %d first push claims replay", iter)
		}
		second, err := c.Push("v", iter, bytes.NewReader(body), nil)
		if err != nil {
			t.Fatalf("iter %d second push: %v", iter, err)
		}
		if !second.Replayed {
			t.Fatalf("iter %d second push not replayed: %+v", iter, second)
		}
		if second.Kind != first.Kind || second.FileBytes != first.FileBytes {
			t.Fatalf("iter %d replay facts %+v differ from commit %+v", iter, second, first)
		}
	}
	// One journal add per committed file — the double-apply check.
	for name, n := range journalAdds(t, filepath.Join(s.Registry().Root(), "t0")) {
		if n != 1 {
			t.Errorf("journal has %d adds for %s, want 1", n, name)
		}
	}

	// The tenant's metrics show two replays.
	mr, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	replays := mr.Tenants["t0"].Counters[obs.CounterCommitReplays.String()]
	if replays != 2 {
		t.Errorf("commit_replays counter = %d, want 2", replays)
	}

	// A different payload for a committed iteration is a conflict, not
	// a silent overwrite and not a replay.
	_, err = c.Push("v", 0, bytes.NewReader(floatBytes(seriesValues(7, 256))), nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict || ae.Class != "commit_conflict" {
		t.Fatalf("conflicting push error = %v, want 409 commit_conflict", err)
	}
}

// TestRawCommitReplay checks the passthrough (raw) commit path has the
// same idempotency: the encoded file from one tenant re-sent twice to
// another replays on the second send.
func TestRawCommitReplay(t *testing.T) {
	_, ts := newTestServer(t, 0, 0)
	src := &Client{Base: ts.URL, Tenant: "src"}
	if _, err := src.Push("v", 0, bytes.NewReader(floatBytes(seriesValues(0, 256))), nil); err != nil {
		t.Fatal(err)
	}
	raw, kind, err := src.FetchRaw("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "full" {
		t.Fatalf("kind %q, want full", kind)
	}

	dst := &Client{Base: ts.URL, Tenant: "dst"}
	first, err := dst.PushRaw("v", 0, raw)
	if err != nil {
		t.Fatal(err)
	}
	second, err := dst.PushRaw("v", 0, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replayed || second.FileBytes != first.FileBytes {
		t.Fatalf("raw replay = %+v, want replay of %+v", second, first)
	}
}

// TestOperatorMessage pins the CLI rendering satellite: 423s name the
// lock holder, Retry-After surfaces as a hint, and retry give-ups
// report the attempt budget with the final cause.
func TestOperatorMessage(t *testing.T) {
	locked := &APIError{
		Status: http.StatusLocked, Class: "store_locked", Detail: "store is locked",
		HolderPID: 4242, HolderAgeMs: 1500, RetryAfterSec: 1,
	}
	msg := OperatorMessage(locked)
	for _, want := range []string{"423", "store_locked", "pid 4242", "1.5s"} {
		if !strings.Contains(msg, want) {
			t.Errorf("423 message %q missing %q", msg, want)
		}
	}

	busy := &APIError{Status: 429, Class: "over_capacity", Detail: "governor full", RetryAfterSec: 3}
	if msg := OperatorMessage(busy); !strings.Contains(msg, "retry after 3s") {
		t.Errorf("429 message %q missing retry hint", msg)
	}

	gaveUp := &RetryExhaustedError{Attempts: 5, Last: busy}
	msg = OperatorMessage(gaveUp)
	if !strings.Contains(msg, "gave up after 5 attempts") || !strings.Contains(msg, "over_capacity") {
		t.Errorf("give-up message %q missing attempts or cause", msg)
	}

	plain := fmt.Errorf("disk full")
	if msg := OperatorMessage(plain); msg != "disk full" {
		t.Errorf("plain error rendered as %q", msg)
	}
}
