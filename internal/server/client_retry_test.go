package server

// Client resilience unit and end-to-end tests: connection reuse across
// success and error paths (the drain-and-close satellite), the retry
// budget and its typed give-up, non-JSON error bodies, the backoff
// rules (Retry-After floor, 423 holder-age pacing), and the full
// locked-store scenario — a client backing off against a held writer
// lock and converging once it is released.

import (
	"bytes"
	"context"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"numarck/internal/checkpoint"
)

// countingClient wraps the default transport with a dial counter, the
// direct measurement of connection reuse: if every response body is
// drained and closed, a sequential client needs exactly one dial.
func countingClient(dials *int32) *http.Client {
	base := http.DefaultTransport.(*http.Transport).Clone()
	d := &net.Dialer{}
	base.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		atomic.AddInt32(dials, 1)
		return d.DialContext(ctx, network, addr)
	}
	return &http.Client{Transport: base}
}

// TestConnectionReuse drives a mix of success and error responses
// through one client and asserts a single TCP connection carried all
// of them — the regression test for leaked (undrained) bodies on
// error paths.
func TestConnectionReuse(t *testing.T) {
	_, ts := newTestServer(t, 0, 0)
	var dials int32
	c := &Client{Base: ts.URL, Tenant: "t0", HTTP: countingClient(&dials)}

	body := floatBytes(seriesValues(0, 128))
	if _, err := c.Push("v", 0, bytes.NewReader(body), nil); err != nil {
		t.Fatal(err)
	}
	// Replay (200), a 404 read, a 404 restart, a chain report, metrics:
	// every one must recycle the same connection.
	if _, err := c.Push("v", 0, bytes.NewReader(body), nil); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if _, _, err := c.Fetch("v", 9, &sink, false); err == nil {
		t.Fatal("fetch of missing iteration succeeded")
	}
	if _, err := c.RestartPoint("nosuch"); err == nil {
		t.Fatal("restart of missing series succeeded")
	}
	if _, err := c.SeriesChain("v", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Metrics(); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&dials); n != 1 {
		t.Fatalf("client dialed %d times for sequential requests, want 1 (response bodies not drained?)", n)
	}
}

// TestNonJSONErrorBody checks that a bare, unstructured error response
// (a proxy's text, not the daemon's JSON) still comes back as a typed
// *APIError carrying the status and the Retry-After hint.
func TestNonJSONErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "bad gateway, sorry", http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL, Tenant: "t0"}
	_, err := c.RestartPoint("v")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if ae.Status != http.StatusBadGateway || ae.Class != "http" || ae.RetryAfterSec != 7 {
		t.Fatalf("decoded %+v, want status 502, class http, retry-after 7", ae)
	}
	if !retryable(ae) {
		t.Fatal("a 502 must be retryable")
	}
}

// TestRetryOnFlaky503 checks a client outlives a server that fails a
// request a few times before succeeding, and that the retry budget is
// what bounds it.
func TestRetryOnFlaky503(t *testing.T) {
	var hits int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, RestartResponse{Tenant: "t0", Variable: "v", Iteration: 3})
	}))
	t.Cleanup(ts.Close)

	var slept []time.Duration
	c := &Client{Base: ts.URL, Tenant: "t0", Retry: RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}}
	rr, err := c.RestartPoint("v")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Iteration != 3 {
		t.Fatalf("iteration = %d, want 3", rr.Iteration)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}

	// A budget of 2 cannot outlast 2 failures plus the success: reset
	// the server and prove the typed give-up.
	atomic.StoreInt32(&hits, -100)
	c.Retry.MaxAttempts = 2
	_, err = c.RestartPoint("v")
	var re *RetryExhaustedError
	if !errors.As(err, &re) || re.Attempts != 2 {
		t.Fatalf("error = %v, want RetryExhaustedError after 2 attempts", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("give-up does not unwrap to the 503: %v", err)
	}
}

// TestNonRetryableStatus checks 4xx truths are returned immediately:
// one attempt, no sleeps, no RetryExhaustedError wrapper.
func TestNonRetryableStatus(t *testing.T) {
	var hits int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		atomic.AddInt32(&hits, 1)
		writeError(w, errBadRequest)
	}))
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL, Tenant: "t0", Retry: RetryPolicy{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) { t.Error("slept before a non-retryable error") },
	}}
	_, err := c.RestartPoint("v")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("error = %v, want the 400 APIError itself", err)
	}
	var re *RetryExhaustedError
	if errors.As(err, &re) {
		t.Fatalf("400 came wrapped in a give-up: %v", err)
	}
	if atomic.LoadInt32(&hits) != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", hits)
	}
}

// TestBackoffRules pins the delay policy: exponential growth under the
// cap, the server's Retry-After as a floor, the 423 holder-age rule
// overriding both, and jitter staying within [d/2, d].
func TestBackoffRules(t *testing.T) {
	c := &Client{Retry: RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}}

	if d := c.backoff(1, errors.New("conn refused")); d != 10*time.Millisecond {
		t.Fatalf("first backoff = %v, want BaseDelay", d)
	}
	if d := c.backoff(3, errors.New("conn refused")); d != 40*time.Millisecond {
		t.Fatalf("third backoff = %v, want 4x BaseDelay", d)
	}
	if d := c.backoff(20, errors.New("conn refused")); d != time.Second {
		t.Fatalf("deep backoff = %v, want MaxDelay cap", d)
	}
	if d := c.backoff(1, &APIError{Status: 429, RetryAfterSec: 2}); d != 2*time.Second {
		t.Fatalf("Retry-After backoff = %v, want the 2s floor", d)
	}
	// A lock held for 3s: poll at ~300ms, not the 1s Retry-After.
	if d := c.backoff(1, &APIError{Status: 423, HolderAgeMs: 3000, RetryAfterSec: 1}); d != 300*time.Millisecond {
		t.Fatalf("423 backoff = %v, want holder-age/10", d)
	}
	// Holder age clamps into [BaseDelay, MaxDelay].
	if d := c.backoff(1, &APIError{Status: 423, HolderAgeMs: 1}); d != 10*time.Millisecond {
		t.Fatalf("young-lock backoff = %v, want BaseDelay clamp", d)
	}
	if d := c.backoff(1, &APIError{Status: 423, HolderAgeMs: 3600000}); d != time.Second {
		t.Fatalf("old-lock backoff = %v, want MaxDelay clamp", d)
	}
	c.Retry.Jitter = rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		d := c.backoff(2, errors.New("x"))
		if d < 10*time.Millisecond || d > 20*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [d/2, d]", d)
		}
	}
}

// TestLockedStoreEndToEnd is the 423 satellite: an external writer
// (an operator CLI, here the test itself) holds a tenant's store lock;
// a one-shot client sees the decoded 423 with the holder's PID, and a
// retrying client backs off until the lock is released, then commits.
func TestLockedStoreEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	dir := filepath.Join(s.Registry().Root(), "t0")
	opt, err := testOptions(t).Validate()
	if err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Create(dir, opt)
	if err != nil {
		t.Fatal(err)
	}

	body := floatBytes(seriesValues(0, 64))
	one := &Client{Base: ts.URL, Tenant: "t0"}
	_, err = one.Push("v", 0, bytes.NewReader(body), nil)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if ae.Status != http.StatusLocked || ae.Class != "store_locked" {
		t.Fatalf("locked store answered %d %s, want 423 store_locked", ae.Status, ae.Class)
	}
	if ae.HolderPID != os.Getpid() {
		t.Fatalf("holder pid %d, want this process (%d)", ae.HolderPID, os.Getpid())
	}
	if ae.HolderAgeMs < 0 || ae.RetryAfterSec < 1 {
		t.Fatalf("423 carries no retry hint: %+v", ae)
	}

	// The retrying client releases the lock from its second backoff —
	// the moment a real operator would finish — and must then succeed.
	var sleeps int32
	retrier := &Client{Base: ts.URL, Tenant: "t0", Retry: RetryPolicy{
		MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		Sleep: func(time.Duration) {
			if atomic.AddInt32(&sleeps, 1) == 2 {
				if cerr := st.Close(); cerr != nil {
					t.Errorf("release lock: %v", cerr)
				}
			}
		},
	}}
	cr, err := retrier.Push("v", 0, bytes.NewReader(body), nil)
	if err != nil {
		t.Fatalf("push against a released lock: %v", err)
	}
	if cr.Kind != "full" || cr.Replayed {
		t.Fatalf("commit = %+v, want a fresh full commit", cr)
	}
	if n := atomic.LoadInt32(&sleeps); n < 2 {
		t.Fatalf("client slept %d times, want at least 2 (never backed off)", n)
	}
}

// nonSeeker hides a reader's Seek method, modeling a genuine stream (a
// pipe, a generator) that can only be read forward once.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

// TestPayloadBodySpoolsNonSeekable pins Push's memory contract: a
// non-seekable body is spooled to a temp file — never materialized in
// client RAM — while still yielding the right CRC and the full
// payload, and cleanup removes the spool afterwards.
func TestPayloadBodySpoolsNonSeekable(t *testing.T) {
	data := floatBytes(seriesValues(0, 64))
	r, crc, cleanup, err := payloadBody(nonSeeker{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if want := crc32.ChecksumIEEE(data); crc != want {
		t.Fatalf("crc = %08x, want %08x", crc, want)
	}
	f, ok := r.(*os.File)
	if !ok {
		t.Fatalf("non-seekable body became %T, want a temp-file spool", r)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spooled body does not match the source stream")
	}
	cleanup()
	if _, err := os.Stat(f.Name()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cleanup left the spool behind: %v", err)
	}

	// A seekable body must pass through untouched — no spool, no copy.
	br := bytes.NewReader(data)
	r, _, cleanup, err = payloadBody(br)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if r != io.Reader(br) {
		t.Fatalf("seekable body became %T, want the reader itself", r)
	}
}

// TestPushNonSeekableBody commits through Push with a stream-only body
// (retries enabled), proving the spool replays correctly end to end.
func TestPushNonSeekableBody(t *testing.T) {
	_, ts := newTestServer(t, 0, 0)
	c := &Client{Base: ts.URL, Tenant: "t0", Retry: RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}}
	body := floatBytes(seriesValues(0, 128))
	cr, err := c.Push("v", 0, nonSeeker{bytes.NewReader(body)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Replayed {
		t.Fatalf("fresh push replayed: %+v", cr)
	}
}

// TestBackoffJitterConcurrent hammers one Client's jittered backoff
// from many goroutines. Under -race this pins that draws from the
// shared jitter source are synchronized; the bounds check keeps the
// [d/2, d] contract honest while it runs.
func TestBackoffJitterConcurrent(t *testing.T) {
	c := &Client{Retry: RetryPolicy{
		BaseDelay: time.Millisecond, MaxDelay: time.Second,
		Jitter: rand.New(rand.NewSource(1)),
	}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				// attempt 3: d = 4ms, jittered into [2ms, 4ms].
				if d := c.backoff(3, errors.New("x")); d < 2*time.Millisecond || d > 4*time.Millisecond {
					t.Errorf("jittered backoff %v outside [d/2, d]", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}
