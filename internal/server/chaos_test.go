package server

// The chaos matrix: the PR's end-to-end failure-survival proof. One
// fault-free exchange (two value commits, one resumable upload, a
// restart query, a reconstruction) establishes how many requests the
// protocol takes and what the store's bytes must look like. Then, for
// every request index and every fault mode, a fresh server runs the
// same exchange through a retrying client with exactly that request
// sabotaged — refused, answered 503, cut mid-request, or cut
// mid-response — and the store must end byte-identical to the
// fault-free run: never torn, never double-applied, with exactly one
// journal "add" per committed file and zero leaked spools or sessions
// once the janitor sweeps.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"numarck/internal/netfault"
)

// chaosN keeps the exchange small enough that the full matrix stays
// inside the smoke budget.
const chaosN = 512

// chaosClient builds a retrying client over a fault-injecting
// transport. Sleeps are recorded, not slept: backoff math still runs
// (including Retry-After floors), the matrix just does not wait it
// out.
func chaosClient(base string, nt *netfault.Transport) *Client {
	return &Client{
		Base: base, Tenant: "sim0",
		HTTP: &http.Client{Transport: nt},
		Retry: RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   time.Millisecond,
			MaxDelay:    4 * time.Millisecond,
			Sleep:       func(time.Duration) {},
		},
	}
}

// chaosExchange is the canonical protocol run: full commit, delta
// commit, resumable upload of iteration 2 in 1 KiB ranges, restart
// query, and a reconstruction of the final state. It returns the
// reconstructed bytes: the codec is lossy, so convergence means every
// scenario reconstructs the identical bytes the fault-free run did,
// not the raw input.
func chaosExchange(c *Client) ([]byte, error) {
	const series = "dens"
	for iter := 0; iter <= 1; iter++ {
		if _, err := c.Push(series, iter, bytes.NewReader(floatBytes(seriesValues(iter, chaosN))), nil); err != nil {
			return nil, fmt.Errorf("push iter %d: %w", iter, err)
		}
	}
	payload := floatBytes(seriesValues(2, chaosN))
	if _, err := c.PushResumable(series, 2, bytes.NewReader(payload), int64(len(payload)), 1024, nil); err != nil {
		return nil, fmt.Errorf("resumable push iter 2: %w", err)
	}
	rp, err := c.RestartPoint(series)
	if err != nil {
		return nil, fmt.Errorf("restart point: %w", err)
	}
	if rp.Iteration != 2 {
		return nil, fmt.Errorf("restart point %d, want 2", rp.Iteration)
	}
	var buf bytes.Buffer
	points, _, err := c.Fetch(series, 2, &buf, false)
	if err != nil {
		return nil, fmt.Errorf("fetch iter 2: %w", err)
	}
	if points != chaosN {
		return nil, fmt.Errorf("fetched %d points, want %d", points, chaosN)
	}
	return buf.Bytes(), nil
}

// snapshotDir maps every file under dir to its bytes (paths relative
// to dir). The store's bytes are deterministic for a given commit
// sequence, so two runs that truly applied the same commits compare
// equal file for file.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	snap := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		snap[rel] = raw
		return nil
	})
	if err != nil {
		t.Fatalf("snapshot %s: %v", dir, err)
	}
	return snap
}

// diffSnapshots renders the first difference between two store
// snapshots, or "" when identical.
func diffSnapshots(want, got map[string][]byte) string {
	for name, wb := range want {
		gb, ok := got[name]
		if !ok {
			return fmt.Sprintf("missing file %s", name)
		}
		if !bytes.Equal(wb, gb) {
			return fmt.Sprintf("file %s differs: %d vs %d bytes", name, len(wb), len(gb))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			return fmt.Sprintf("extra file %s", name)
		}
	}
	return ""
}

// journalAdds counts "add" records per file name in a store's
// MANIFEST journal — the double-apply detector: a replayed retry must
// not append a second record for the same file.
func journalAdds(t *testing.T, storeDir string) map[string]int {
	t.Helper()
	f, err := os.Open(filepath.Join(storeDir, "MANIFEST"))
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	adds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Op   string `json:"op"`
			Name string `json:"name"`
		}
		if json.Unmarshal(sc.Bytes(), &rec) == nil && rec.Op == "add" {
			adds[rec.Name]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan journal: %v", err)
	}
	return adds
}

// sweepAndCheckClean runs a reap-everything janitor pass and asserts
// no spool files or upload sessions survive it.
func sweepAndCheckClean(t *testing.T, s *Server, label string) {
	t.Helper()
	if _, err := s.Sweep(JanitorConfig{}); err != nil {
		t.Fatalf("%s: sweep: %v", label, err)
	}
	des, err := os.ReadDir(s.spoolDir)
	if err != nil {
		t.Fatalf("%s: scan spool: %v", label, err)
	}
	for _, de := range des {
		if de.Name() != uploadDirName {
			t.Errorf("%s: leaked spool file %s", label, de.Name())
		}
	}
	sess, err := os.ReadDir(s.uploads.dir)
	if err != nil {
		t.Fatalf("%s: scan sessions: %v", label, err)
	}
	for _, de := range sess {
		t.Errorf("%s: leaked upload session %s", label, de.Name())
	}
}

// checkStoreConverged asserts one chaos scenario's end state: store
// bytes identical to the fault-free baseline, exactly one journal add
// per committed file, and nothing left for the janitor.
func checkStoreConverged(t *testing.T, s *Server, base map[string]int, baseSnap map[string][]byte, label string) {
	t.Helper()
	storeDir := filepath.Join(s.reg.Root(), "sim0")
	if d := diffSnapshots(baseSnap, snapshotDir(t, storeDir)); d != "" {
		t.Errorf("%s: store diverged from fault-free run: %s", label, d)
	}
	adds := journalAdds(t, storeDir)
	for name, n := range adds {
		if n != 1 {
			t.Errorf("%s: journal has %d adds for %s, want 1 (double-applied commit)", label, n, name)
		}
	}
	for name := range base {
		if adds[name] == 0 {
			t.Errorf("%s: journal missing add for %s", label, name)
		}
	}
	sweepAndCheckClean(t, s, label)
}

// TestChaosMatrix is the headline proof. It runs the baseline exchange
// once to learn the request count R and the store's canonical bytes,
// then runs R x 4 scenarios: for every request index, a fresh server
// and a retrying client with that request refused, answered a bare
// 503 + Retry-After, cut mid-request body, or cut mid-response body.
// Every scenario must converge to the byte-identical store.
func TestChaosMatrix(t *testing.T) {
	s0, ts0 := newTestServer(t, 0, 0)
	nt0 := netfault.NewTransport(nil, 1)
	baseFetch, err := chaosExchange(chaosClient(ts0.URL, nt0))
	if err != nil {
		t.Fatalf("fault-free baseline: %v", err)
	}
	storeDir := filepath.Join(s0.reg.Root(), "sim0")
	baseSnap := snapshotDir(t, storeDir)
	baseAdds := journalAdds(t, storeDir)
	reqs := nt0.Requests()
	if reqs < 8 {
		t.Fatalf("baseline took %d requests, expected the full protocol (>= 8)", reqs)
	}
	sweepAndCheckClean(t, s0, "baseline")

	modes := []netfault.Mode{netfault.ModeRefuse, netfault.ModeStatus, netfault.ModeCutRequest, netfault.ModeCutResponse}
	for i := 1; i <= reqs; i++ {
		for _, mode := range modes {
			name := fmt.Sprintf("req%02d-%s", i, mode)
			t.Run(name, func(t *testing.T) {
				f := netfault.Fault{Nth: i, Mode: mode}
				switch mode {
				case netfault.ModeStatus:
					f.Status = http.StatusServiceUnavailable
					f.RetryAfterSec = 1
				case netfault.ModeCutRequest, netfault.ModeCutResponse:
					f.AfterBytes = 20
				}
				s, ts := newTestServer(t, 0, 0)
				nt := netfault.NewTransport(nil, int64(i))
				nt.AddFault(f)
				fetched, err := chaosExchange(chaosClient(ts.URL, nt))
				if err != nil {
					t.Fatalf("exchange: %v\ntrace: %v", err, nt.Trace())
				}
				if !bytes.Equal(fetched, baseFetch) {
					t.Errorf("reconstruction differs from fault-free run")
				}
				checkStoreConverged(t, s, baseAdds, baseSnap, name)
			})
		}
	}
}

// TestChaosGiveUp proves the bounded-budget side: against a network
// that refuses every connection, the client gives up with the typed
// RetryExhaustedError after exactly its attempt budget, and the server
// side is untouched — a clean pre-commit state, not a torn one.
func TestChaosGiveUp(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	nt := netfault.NewTransport(nil, 7)
	nt.AddFault(netfault.Fault{Mode: netfault.ModeRefuse, Nth: 1, Count: -1})
	c := chaosClient(ts.URL, nt)
	c.Retry.MaxAttempts = 3

	_, err := c.Push("dens", 0, bytes.NewReader(floatBytes(seriesValues(0, 64))), nil)
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want *RetryExhaustedError", err)
	}
	if re.Attempts != 3 {
		t.Fatalf("gave up after %d attempts, want 3", re.Attempts)
	}
	if !errors.Is(err, netfault.ErrInjected) {
		t.Fatalf("give-up cause %v does not unwrap to the injected fault", err)
	}
	if nt.Requests() != 3 {
		t.Fatalf("transport saw %d requests, want 3", nt.Requests())
	}
	if _, serr := os.Stat(filepath.Join(s.reg.Root(), "sim0")); !os.IsNotExist(serr) {
		t.Fatalf("tenant store exists after refused commits: %v", serr)
	}
	sweepAndCheckClean(t, s, "give-up")
}
