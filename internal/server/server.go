// Package server is the NUMARCK checkpoint service daemon's core: a
// stdlib-only multi-tenant HTTP layer over the checkpoint store and
// the out-of-core codec pipeline. Simulations push raw float64 state
// over streaming POSTs; the daemon encodes transitions with the
// chunked v2 pipeline, commits them to per-tenant stores, and serves
// reconstructions, chain reports, and metrics back out.
//
// Three subsystems carry the design:
//
//   - The tenant Registry opens each tenant's store lazily under one
//     root and holds the single-writer lock only while a write is in
//     flight; reads are served from cached lock-free ReadViews.
//   - The memory Governor admission-controls concurrent pipelines by
//     their resolved footprint (chunk.ResolveConfig), queueing FIFO
//     and answering 429 + Retry-After instead of OOMing.
//   - Graceful drain: StartDrain flips /readyz and refuses new work
//     with 503 while in-flight commits finish and release their
//     locks; the daemon binary pairs it with http.Server.Shutdown on
//     SIGTERM.
//
// Wire format: checkpoint payloads cross the wire exactly as the
// NMRKF1/NMRKD1/NMRKD2 file formats (?raw=1) or as raw little-endian
// float64 arrays (the default), with no extra framing; errors are
// structured JSON mapped from the storage layer's typed errors.
package server

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"numarck/internal/chunk"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// ErrDraining reports a request that arrived after drain began; it
// maps to 503 so load balancers move on.
var ErrDraining = errors.New("server: draining, not accepting new work")

// spoolDirName is the scratch directory under the registry root where
// request bodies are spooled. It starts with a dot, which tenant names
// cannot, so it can never collide with a tenant's store.
const spoolDirName = ".spool"

// Config configures a Server.
type Config struct {
	// Root is the directory holding one store per tenant. Required.
	Root string
	// Opt is the default encode options; per-request query parameters
	// (e, b, strategy) override it.
	Opt core.Options
	// Chunk is the default pipeline configuration; per-request query
	// parameters (chunk, workers, budget) override it. Its BudgetBytes
	// bounds each single pipeline; CapacityBytes below bounds their
	// sum.
	Chunk chunk.Config
	// CapacityBytes is the memory governor's total admission capacity
	// across concurrent requests. 0 disables admission control.
	CapacityBytes int64
	// AdmitWait is how long a request waits for governor admission
	// before 429. Default 2s.
	AdmitWait time.Duration
}

// Server is the checkpoint service: build one with New, mount
// Handler() on an http.Server, and call StartDrain on shutdown.
type Server struct {
	cfg      Config
	reg      *Registry
	gov      *Governor
	spoolDir string
	start    time.Time
	draining atomic.Bool

	// uploads serializes and caches resumable upload sessions; their
	// state lives under spoolDir/uploads.
	uploads *uploadTable
	// jrec collects the self-healing janitor's counters
	// (spools_reaped, sessions_reaped, locks_recovered), published in
	// /metrics separately from tenant pipelines.
	jrec *obs.Recorder

	// spoolBusy marks spool scratch files owned by in-flight requests,
	// guarded by spoolMu. The janitor judges orphaned spools by age, but
	// a slow upload or a long governor wait can hold a spool past any
	// TTL — ownership, not mtime, is what keeps those alive.
	spoolMu   sync.Mutex
	spoolBusy map[string]struct{}
}

// New validates cfg and builds the server, creating the root and spool
// directories.
func New(cfg Config) (*Server, error) {
	opt, err := cfg.Opt.Validate()
	if err != nil {
		return nil, fmt.Errorf("server: default options: %w", err)
	}
	cfg.Opt = opt
	if _, err := chunk.ResolveConfig(cfg.Chunk); err != nil {
		return nil, fmt.Errorf("server: default pipeline config: %w", err)
	}
	if cfg.AdmitWait <= 0 {
		cfg.AdmitWait = 2 * time.Second
	}
	reg, err := NewRegistry(cfg.Root, cfg.Opt)
	if err != nil {
		return nil, err
	}
	spool := filepath.Join(cfg.Root, spoolDirName)
	if err := os.MkdirAll(spool, 0o755); err != nil {
		return nil, fmt.Errorf("server: create spool dir: %w", err)
	}
	uploadDir := filepath.Join(spool, uploadDirName)
	if err := os.MkdirAll(uploadDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create upload dir: %w", err)
	}
	return &Server{
		cfg:      cfg,
		reg:      reg,
		gov:      NewGovernor(cfg.CapacityBytes),
		spoolDir: spool,
		start:    time.Now(),
		uploads:  newUploadTable(uploadDir),
		jrec:     obs.NewRecorder(),

		spoolBusy: make(map[string]struct{}),
	}, nil
}

// markSpool flags a spool scratch file as owned by an in-flight
// request; sweepSpools skips flagged files regardless of their age.
func (s *Server) markSpool(path string) {
	s.spoolMu.Lock()
	s.spoolBusy[path] = struct{}{}
	s.spoolMu.Unlock()
}

// releaseSpool drops a spool file's in-flight flag once its request no
// longer needs the bytes.
func (s *Server) releaseSpool(path string) {
	s.spoolMu.Lock()
	delete(s.spoolBusy, path)
	s.spoolMu.Unlock()
}

// spoolInUse reports whether a spool file is owned by a live request.
func (s *Server) spoolInUse(path string) bool {
	s.spoolMu.Lock()
	_, ok := s.spoolBusy[path]
	s.spoolMu.Unlock()
	return ok
}

// Registry returns the server's tenant registry (tests and the daemon
// binary use it for drain accounting).
func (s *Server) Registry() *Registry { return s.reg }

// Governor returns the server's admission controller (tests use it to
// occupy capacity deterministically).
func (s *Server) Governor() *Governor { return s.gov }

// StartDrain flips the server into draining mode: /readyz turns 503
// and new API requests are refused with 503 + Retry-After, while
// requests already in flight run to completion (the caller pairs this
// with http.Server.Shutdown, which waits for them). Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler builds the daemon's route table.
//
//	POST /v1/{tenant}/{series}/checkpoints         commit an iteration (body: raw f64, or ?raw=1 file bytes)
//	GET  /v1/{tenant}/{series}/checkpoints/{iter}  reconstruct (?recover=1 salvage, ?raw=1 file bytes)
//	GET  /v1/{tenant}/{series}/chain               one series' chain entries + stats (?verify=1 deep check)
//	GET  /v1/{tenant}/chain                        whole tenant: variables, stats, health
//	POST /v1/{tenant}/{series}/restart             where to resume: latest restorable iteration
//	POST /v1/{tenant}/{series}/uploads             start a resumable upload session (?iter, ?size, plus commit params)
//	PUT  /v1/uploads/{id}                          append one range (X-Numarck-Upload-Offset, optional range CRC)
//	GET  /v1/uploads/{id}/status                   session progress: the client's resume point
//	POST /v1/uploads/{id}/finalize                 commit the completed session through the normal pipeline
//	GET  /healthz                                  process liveness (always 200)
//	GET  /readyz                                   503 once draining
//	GET  /metrics                                  per-tenant + merged obs snapshots, governor state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/{tenant}/{series}/checkpoints", s.gated(s.handlePostCheckpoint))
	mux.HandleFunc("GET /v1/{tenant}/{series}/checkpoints/{iter}", s.gated(s.handleGetCheckpoint))
	mux.HandleFunc("GET /v1/{tenant}/{series}/chain", s.gated(s.handleSeriesChain))
	mux.HandleFunc("GET /v1/{tenant}/chain", s.gated(s.handleTenantChain))
	mux.HandleFunc("POST /v1/{tenant}/{series}/restart", s.gated(s.handleRestart))
	// Resumable uploads: tenant-scoped creation, then session-scoped
	// ranges/status/finalize. The status route carries a literal tail
	// ("status") so it cannot overlap GET /v1/{tenant}/chain — ServeMux
	// rejects ambiguous wildcard patterns at registration.
	mux.HandleFunc("POST /v1/{tenant}/{series}/uploads", s.gated(s.handleCreateUpload))
	mux.HandleFunc("PUT /v1/uploads/{id}", s.gated(s.handlePutUploadRange))
	mux.HandleFunc("GET /v1/uploads/{id}/status", s.gated(s.handleUploadStatus))
	mux.HandleFunc("POST /v1/uploads/{id}/finalize", s.gated(s.handleFinalizeUpload))
	return mux
}

// gated wraps an API handler with the drain gate: once StartDrain has
// run, new requests get 503 before touching any store.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, ErrDraining)
			return
		}
		h(w, r)
	}
}

// handleMetrics publishes the daemon's observability state: one obs
// snapshot per tenant, their merge as the process-wide view, governor
// admission state, and uptime.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	tenants := s.reg.Tenants()
	byName := make(map[string]obs.Snapshot, len(tenants))
	snaps := make([]obs.Snapshot, 0, len(tenants))
	for _, t := range tenants {
		snap := t.Recorder().Snapshot()
		byName[t.Name()] = snap
		snaps = append(snaps, snap)
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeNs: time.Since(s.start).Nanoseconds(),
		Draining: s.draining.Load(),
		Governor: s.gov.Stats(),
		Tenants:  byName,
		Process:  obs.MergeSnapshots(snaps...),
		Janitor:  s.jrec.Snapshot(),
	})
}

// spool copies an incoming request body to a scratch file under
// root/.spool and returns its path, size, and the CRC-32 (IEEE) of
// the bytes as they arrived — the payload checksum the idempotent
// commit path journals. Bodies are spooled, not buffered, because the
// encode pipeline must read its source twice; the caller removes the
// file and releases its in-flight mark (releaseSpool). Spool files
// live outside every store directory so a crashed daemon's leftovers
// are inert scratch the janitor reaps, not store-recovery work; the
// file is marked in-flight from creation so the janitor never reaps a
// body a live request is still filling or committing.
func (s *Server) spool(body io.Reader) (path string, size int64, crc uint32, err error) {
	f, err := os.CreateTemp(s.spoolDir, "body-*")
	if err != nil {
		return "", 0, 0, fmt.Errorf("server: spool: %w", err)
	}
	s.markSpool(f.Name())
	h := crc32.NewIEEE()
	size, err = io.Copy(io.MultiWriter(f, h), body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Best-effort cleanup of a scratch file that failed to fill.
		_ = os.Remove(f.Name())
		s.releaseSpool(f.Name())
		return "", 0, 0, fmt.Errorf("server: spool: %w", err)
	}
	return f.Name(), size, h.Sum32(), nil
}
