package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGovernorSerializesAdmission runs many full-capacity requests
// concurrently: each must be admitted alone, so the observed
// concurrency never exceeds one and the charged weight never exceeds
// capacity.
func TestGovernorSerializesAdmission(t *testing.T) {
	const capacity = 1 << 20
	g := NewGovernor(capacity)
	var inFlight, maxInFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background(), capacity)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			cur := inFlight.Add(1)
			for {
				old := maxInFlight.Load()
				if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
					break
				}
			}
			if used := g.Stats().UsedBytes; used > capacity {
				peak.Store(used)
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if got := maxInFlight.Load(); got != 1 {
		t.Errorf("max concurrent full-capacity admissions = %d, want 1", got)
	}
	if p := peak.Load(); p != 0 {
		t.Errorf("admitted weight peaked at %d, over capacity %d", p, capacity)
	}
	st := g.Stats()
	if st.UsedBytes != 0 || st.Waiting != 0 {
		t.Errorf("governor not drained: %+v", st)
	}
}

// TestGovernorPeakUnderCapacity admits mixed-weight requests
// concurrently and checks the summed admitted weight never exceeds
// capacity.
func TestGovernorPeakUnderCapacity(t *testing.T) {
	const capacity = 1000
	g := NewGovernor(capacity)
	var admitted, violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		weight := int64(100 + 50*(i%8))
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background(), weight)
			if err != nil {
				t.Errorf("Acquire(%d): %v", weight, err)
				return
			}
			if cur := admitted.Add(weight); cur > capacity {
				violations.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
			admitted.Add(-weight)
			release()
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("admitted weight exceeded capacity %d times", v)
	}
}

// TestGovernorFIFO queues waiters one at a time behind a
// capacity-filling holder and checks they are granted in arrival
// order — a later small request must not jump a queued large one.
func TestGovernorFIFO(t *testing.T) {
	const capacity = 100
	g := NewGovernor(capacity)
	hold, err := g.Acquire(context.Background(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 6
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Uniform weights over half capacity: only one waiter fits at a
	// time, so grants are strictly sequential and each waiter appends
	// before its release grants the next — the recorded order IS the
	// grant order. A LIFO scheduler would reverse it.
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release, err := g.Acquire(context.Background(), 60)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			release()
		}(i)
		// Enqueue deterministically: wait until this waiter is queued
		// before spawning the next.
		for g.Stats().Waiting != i+1 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	hold()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want strict FIFO", order)
		}
	}
}

// TestGovernorHeadBlocksLine checks fairness: while a large request
// that does not yet fit heads the queue, a later small request that
// would fit is NOT admitted around it — small traffic cannot starve a
// big one.
func TestGovernorHeadBlocksLine(t *testing.T) {
	g := NewGovernor(100)
	hold, err := g.Acquire(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	bigGranted := make(chan struct{})
	go func() {
		release, err := g.Acquire(context.Background(), 90)
		if err != nil {
			t.Errorf("big waiter: %v", err)
			close(bigGranted)
			return
		}
		close(bigGranted)
		release()
	}()
	for g.Stats().Waiting != 1 {
		time.Sleep(50 * time.Microsecond)
	}
	// 50 used + 30 fits numerically, but the queued 90 heads the line.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx, 30); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("small request overtook the queue head: err = %v", err)
	}
	hold()
	<-bigGranted
}

// TestGovernorRejections checks the two refusal modes: a weight over
// total capacity is permanently rejected (ErrTooLarge), and a wait
// that outlives its context is turned away (ErrOverCapacity wrapping
// the context error) and removed from the queue.
func TestGovernorRejections(t *testing.T) {
	g := NewGovernor(100)
	if _, err := g.Acquire(context.Background(), 101); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized acquire = %v, want ErrTooLarge", err)
	}
	hold, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = g.Acquire(ctx, 50)
	if !errors.Is(err, ErrOverCapacity) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timed-out acquire = %v, want ErrOverCapacity wrapping DeadlineExceeded", err)
	}
	if w := g.Stats().Waiting; w != 0 {
		t.Errorf("abandoned waiter still queued: %d", w)
	}
	hold()
	// Capacity must be whole again after the churn.
	release, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
	release()
	if st := g.Stats(); st.UsedBytes != 0 {
		t.Errorf("used = %d after all releases", st.UsedBytes)
	}
}

// TestGovernorUngovernedAndNil checks the pass-through modes: nil
// governor and capacity 0 admit everything immediately.
func TestGovernorUngovernedAndNil(t *testing.T) {
	var g *Governor
	release, err := g.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatalf("nil governor: %v", err)
	}
	release()
	g = NewGovernor(0)
	release, err = g.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatalf("capacity-0 governor: %v", err)
	}
	release()
}
