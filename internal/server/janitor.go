package server

// The self-healing janitor: a periodic sweep that undoes what crashes
// leave behind. A daemon killed mid-request strands three kinds of
// state — spool scratch files, resumable upload sessions, and (when a
// whole process died holding a store) stale writer locks. None of them
// block correctness on their own, but they accumulate: spools eat
// disk, expired sessions eat disk and table entries, and a stale LOCK
// makes every write to that tenant fail 423 until someone recovers it.
// The janitor reaps all three on a clock and publishes what it did as
// counters (spools_reaped, sessions_reaped, locks_recovered) under
// /metrics, so "the daemon healed itself" is observable, not folklore.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// JanitorConfig tunes the self-healing sweep.
type JanitorConfig struct {
	// Interval is RunJanitor's sweep period (default 1m).
	Interval time.Duration
	// SpoolTTL is how old (by mtime) a spool scratch file must be
	// before it is considered orphaned. RunJanitor defaults it to 1h;
	// Sweep treats zero as "reap everything", which tests use.
	SpoolTTL time.Duration
	// SessionTTL is how long an upload session may sit idle (by its
	// meta.json mtime) before it is reaped, finalized or not.
	// RunJanitor defaults it to 24h; zero in Sweep reaps everything.
	SessionTTL time.Duration
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// Alive overrides the lock-owner liveness probe (tests); nil uses
	// the real signal-0 check.
	Alive func(pid int) bool
}

// JanitorReport is one sweep's tally.
type JanitorReport struct {
	// SpoolsReaped counts orphaned spool scratch files removed.
	SpoolsReaped int
	// SessionsReaped counts upload sessions removed.
	SessionsReaped int
	// LocksRecovered counts stale writer locks broken and their stores
	// recovered.
	LocksRecovered int
}

// Sweep runs one janitor pass: reap orphaned spool files older than
// SpoolTTL, upload sessions idle longer than SessionTTL, and stale
// writer locks whose recorded owner is provably dead. Items it cannot
// judge (unreadable, actively locked by a live process) are left
// alone; per-item failures are collected, not fatal, so one bad entry
// never shields the rest from cleaning.
func (s *Server) Sweep(cfg JanitorConfig) (JanitorReport, error) {
	now := time.Now
	if cfg.Now != nil {
		now = cfg.Now
	}
	var rep JanitorReport
	var errs []error

	rep.SpoolsReaped, errs = s.sweepSpools(now(), cfg.SpoolTTL, errs)
	rep.SessionsReaped, errs = s.sweepSessions(now(), cfg.SessionTTL, errs)
	rep.LocksRecovered, errs = s.sweepLocks(cfg.Alive, errs)

	s.jrec.Add(obs.CounterSpoolsReaped, int64(rep.SpoolsReaped))
	s.jrec.Add(obs.CounterSessionsReaped, int64(rep.SessionsReaped))
	s.jrec.Add(obs.CounterLocksRecovered, int64(rep.LocksRecovered))
	return rep, errors.Join(errs...)
}

// sweepSpools removes spool scratch files whose mtime is older than
// ttl. The uploads directory under the spool root is session state,
// not scratch — sweepSessions owns it.
func (s *Server) sweepSpools(now time.Time, ttl time.Duration, errs []error) (int, []error) {
	des, err := os.ReadDir(s.spoolDir)
	if err != nil {
		return 0, append(errs, fmt.Errorf("janitor: scan spool: %w", err))
	}
	reaped := 0
	for _, de := range des {
		if de.Name() == uploadDirName {
			continue
		}
		path := filepath.Join(s.spoolDir, de.Name())
		if s.spoolInUse(path) {
			// A live request still needs these bytes — a slow upload or a
			// long governor wait can hold a spool past any TTL. Age means
			// nothing against ownership.
			continue
		}
		fi, err := de.Info()
		if err != nil {
			// Raced with the request that owns it; it is gone either way.
			continue
		}
		if now.Sub(fi.ModTime()) < ttl {
			continue
		}
		if err := os.RemoveAll(path); err != nil {
			errs = append(errs, fmt.Errorf("janitor: reap spool %s: %w", de.Name(), err))
			continue
		}
		reaped++
	}
	return reaped, errs
}

// sweepSessions removes upload sessions whose meta.json has not been
// touched within ttl — meta is rewritten on every accepted range, so
// its mtime is the session's last sign of life. A live session's mutex
// is held across removal so a racing range PUT serializes against the
// reap instead of appending into a deleted directory.
func (s *Server) sweepSessions(now time.Time, ttl time.Duration, errs []error) (int, []error) {
	dir := s.uploads.dir
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, append(errs, fmt.Errorf("janitor: scan sessions: %w", err))
	}
	reaped := 0
	for _, de := range des {
		id := de.Name()
		path := filepath.Join(dir, id)
		fi, err := os.Stat(filepath.Join(path, "meta.json"))
		if err != nil {
			// No meta.json: either a session mid-creation (between
			// handleCreateUpload's MkdirAll and the first meta rename) or
			// debris from a crashed create. Judge it by the directory's
			// own mtime so an in-flight create is never reaped out from
			// under its handler; real debris ages past the TTL like any
			// other orphan.
			if fi, err = os.Stat(path); err != nil {
				// Vanished between ReadDir and Stat.
				continue
			}
		}
		if now.Sub(fi.ModTime()) < ttl {
			continue
		}
		if u, gerr := s.uploads.get(id); gerr == nil {
			u.mu.Lock()
			err = os.RemoveAll(path)
			u.mu.Unlock()
		} else {
			// Not a loadable session (malformed ID, corrupt meta):
			// still disk to reclaim.
			err = os.RemoveAll(path)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("janitor: reap session %s: %w", id, err))
			continue
		}
		s.uploads.remove(id)
		reaped++
	}
	return reaped, errs
}

// sweepLocks finds tenant stores whose writer LOCK names a provably
// dead owner and recovers them by running an empty write through the
// normal path: Open performs the verified stale-lock takeover and the
// recovery scan, Close releases the fresh lock. Locks held by live
// processes — including this one's in-flight writes — are not stale
// and are left alone.
func (s *Server) sweepLocks(alive func(pid int) bool, errs []error) (int, []error) {
	recovered := 0
	for _, t := range s.reg.Tenants() {
		ls, err := checkpoint.InspectLockFS(faultfs.OS(), t.Dir(), alive)
		if err != nil {
			errs = append(errs, fmt.Errorf("janitor: inspect lock %s: %w", t.Name(), err))
			continue
		}
		if !ls.Stale() {
			continue
		}
		if err := t.WithStore(func(*checkpoint.Store) error { return nil }); err != nil {
			errs = append(errs, fmt.Errorf("janitor: recover %s: %w", t.Name(), err))
			continue
		}
		recovered++
	}
	return recovered, errs
}

// RunJanitor sweeps immediately and then every cfg.Interval until ctx
// is done, with production defaults applied to zero fields (1m
// interval, 1h spool TTL, 24h session TTL). The daemon binary runs it
// as a background goroutine; sweep failures are reported through the
// janitor counters staying flat, never by killing the loop.
func (s *Server) RunJanitor(ctx context.Context, cfg JanitorConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.SpoolTTL <= 0 {
		cfg.SpoolTTL = time.Hour
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 24 * time.Hour
	}
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		// Per-item sweep errors are advisory; the loop must outlive them.
		_, _ = s.Sweep(cfg)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
