package server

// Janitor tests: the self-healing sweep reaps orphaned spool files,
// expired upload sessions, and stale writer locks; publishes all three
// counters through /metrics; respects TTLs for live state; and leaves
// the tenant writable again after a lock recovery.

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// deadPID is above the kernel's pid ceiling, so a liveness probe
// always reports it dead — a provably stale lock owner.
const deadPID = 1999999999

// plantOrphans leaves one orphaned spool file, one idle upload
// session, and one dead-owner writer lock on tenant name.
func plantOrphans(t *testing.T, s *Server, ts string, name string) {
	t.Helper()
	// A spool file whose request died before commit.
	if err := os.WriteFile(filepath.Join(s.spoolDir, "ckpt-orphan"), []byte("half a payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An upload session nobody will ever finalize.
	h := &uploadHarness{t: t, base: ts, http: http.DefaultClient, payload: floatBytes(seriesValues(0, 16))}
	resp := h.do("POST", ts+"/v1/"+name+"/v/uploads?iter=5&size=128", nil, nil)
	h.decode(resp, 201)
	// A store whose writer crashed while holding the lock: commit once
	// so the store exists, then reacquire the lock as a dead process.
	c := &Client{Base: ts, Tenant: name}
	if _, err := c.Push("v", 0, bytes.NewReader(floatBytes(seriesValues(0, 64))), nil); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(s.Registry().Root(), name)
	// The opened store is deliberately abandoned: its LOCK file, owned
	// by deadPID, is the orphan under test.
	if _, err := checkpoint.OpenFSOwner(dir, faultfs.OS(), nil, checkpoint.LockOwner{PID: deadPID}); err != nil {
		t.Fatal(err)
	}
	ls, err := checkpoint.InspectLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Stale() {
		t.Fatalf("planted lock is not stale: %+v", ls)
	}
}

// TestJanitorSweep plants all three kinds of orphan, sweeps with zero
// TTLs, and checks the report, the /metrics counters, and that the
// recovered tenant accepts writes again.
func TestJanitorSweep(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	plantOrphans(t, s, ts.URL, "jt")

	rep, err := s.Sweep(JanitorConfig{})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.SpoolsReaped != 1 || rep.SessionsReaped != 1 || rep.LocksRecovered != 1 {
		t.Fatalf("report = %+v, want one of each", rep)
	}

	// The lock is gone and the tenant writes again through the daemon.
	dir := filepath.Join(s.Registry().Root(), "jt")
	ls, err := checkpoint.InspectLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Held {
		t.Fatalf("lock still held after sweep: %+v", ls)
	}
	c := &Client{Base: ts.URL, Tenant: "jt"}
	if _, err := c.Push("v", 1, bytes.NewReader(floatBytes(seriesValues(1, 64))), nil); err != nil {
		t.Fatalf("push after lock recovery: %v", err)
	}

	// The counters surface in the metrics endpoint's janitor section.
	mr, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for counter, want := range map[string]int64{
		obs.CounterSpoolsReaped.String():   1,
		obs.CounterSessionsReaped.String(): 1,
		obs.CounterLocksRecovered.String(): 1,
	} {
		if got := mr.Janitor.Counters[counter]; got != want {
			t.Errorf("metrics janitor counter %s = %d, want %d", counter, got, want)
		}
	}
}

// TestJanitorRespectsTTLs checks fresh state survives a sweep with
// nonzero TTLs: a young spool file, a live session, and a healthy
// (dead-free) store must all be left alone.
func TestJanitorRespectsTTLs(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	if err := os.WriteFile(filepath.Join(s.spoolDir, "ckpt-live"), []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := &uploadHarness{t: t, base: ts.URL, http: http.DefaultClient, payload: floatBytes(seriesValues(0, 16))}
	ur := h.decode(h.do("POST", ts.URL+"/v1/t0/v/uploads?iter=0&size=128", nil, nil), 201)
	c := &Client{Base: ts.URL, Tenant: "t0"}
	if _, err := c.Push("w", 0, bytes.NewReader(floatBytes(seriesValues(0, 64))), nil); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Sweep(JanitorConfig{SpoolTTL: time.Hour, SessionTTL: time.Hour})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.SpoolsReaped != 0 || rep.SessionsReaped != 0 || rep.LocksRecovered != 0 {
		t.Fatalf("report = %+v, want nothing reaped", rep)
	}
	if _, err := os.Stat(filepath.Join(s.spoolDir, "ckpt-live")); err != nil {
		t.Fatalf("young spool file reaped: %v", err)
	}
	h.id = ur.ID
	if got := h.received(); got != 0 {
		t.Fatalf("live session received = %d, want 0 (and alive)", got)
	}
}

// TestJanitorSparesMidCreateSession pins the create/sweep race: a
// session directory that exists without meta.json is the window inside
// handleCreateUpload between MkdirAll and the first meta rename, not
// automatically debris. The sweep must judge it by the directory's own
// mtime against the TTL — sparing an in-flight create, still reaping a
// crashed create once it ages out.
func TestJanitorSparesMidCreateSession(t *testing.T) {
	s, _ := newTestServer(t, 0, 0)
	dir := filepath.Join(s.uploads.dir, "0123456789abcdef0123456789abcdef")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Sweep(JanitorConfig{SpoolTTL: time.Hour, SessionTTL: time.Hour})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.SessionsReaped != 0 {
		t.Fatalf("reaped %d sessions, want the mid-create dir spared", rep.SessionsReaped)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("mid-create session dir reaped: %v", err)
	}

	// Aged past the TTL it is debris from a crashed create: reaped.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(dir, old, old); err != nil {
		t.Fatal(err)
	}
	if rep, err = s.Sweep(JanitorConfig{SpoolTTL: time.Hour, SessionTTL: time.Hour}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.SessionsReaped != 1 {
		t.Fatalf("reaped %d sessions, want the aged debris gone", rep.SessionsReaped)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("aged debris dir survived the sweep: %v", err)
	}
}

// TestJanitorSparesInFlightSpool pins the spool ownership rule: a
// spool file older than any TTL but still owned by a live request (a
// slow upload, a long governor wait) survives the sweep, and is reaped
// only once its request releases it.
func TestJanitorSparesInFlightSpool(t *testing.T) {
	s, _ := newTestServer(t, 0, 0)
	path := filepath.Join(s.spoolDir, "body-busy")
	if err := os.WriteFile(path, []byte("still streaming"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	s.markSpool(path)

	rep, err := s.Sweep(JanitorConfig{})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.SpoolsReaped != 0 {
		t.Fatalf("reaped %d spools, want the in-flight one spared", rep.SpoolsReaped)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("in-flight spool reaped: %v", err)
	}

	s.releaseSpool(path)
	if rep, err = s.Sweep(JanitorConfig{}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.SpoolsReaped != 1 {
		t.Fatalf("reaped %d spools after release, want 1", rep.SpoolsReaped)
	}
}
