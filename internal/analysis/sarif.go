package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 serialization — the minimal, stable subset GitHub code
// scanning consumes to render findings as inline PR annotations. Field
// names follow the OASIS sarif-2.1.0 schema; anything optional that the
// renderer does not need is omitted so the golden-file test stays
// readable.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the result as a SARIF 2.1.0 log. Every analyzer
// becomes a rule (plus the reserved "lint" rule for the framework's own
// suppression findings), and file paths are emitted relative to rootDir
// under the %SRCROOT% base, which is what CI annotation uploaders
// expect. Findings render at level "error": a finding fails the build.
func (r *Result) WriteSARIF(w io.Writer, rootDir string, analyzers []Analyzer) error {
	rules := []sarifRule{{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "malformed, non-canonical or unused //lint:ignore suppression directives"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifMessage{Text: a.Doc()},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	ruleIndex := map[string]int{}
	for i, rule := range rules {
		ruleIndex[rule.ID] = i
	}

	results := make([]sarifResult, 0, len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		uri := d.File
		if rel, err := filepath.Rel(rootDir, d.File); err == nil {
			uri = rel
		}
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			// A diagnostic from an analyzer outside the declared set
			// still serializes; -1 is SARIF's "no rule metadata".
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Line,
						StartColumn: d.Col,
					},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "numarcklint",
				InformationURI: "https://example.invalid/numarck",
				Rules:          rules,
			}},
			Results: results,
		}},
	})
}
