package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// FactComputer is the optional second face of an Analyzer: an analyzer
// that implements it participates in the engine's fact phase, which
// visits every package of the module in dependency order BEFORE any
// diagnostics run. Facts recorded there (keyed by types.Object, so they
// survive package boundaries) are visible to every analyzer's Run
// through Pass.Facts, which is how an analyzer reasons
// interprocedurally: a callee's package is always fact-complete by the
// time its callers are visited, and the whole module is fact-complete
// by the time any diagnostic pass starts.
type FactComputer interface {
	// ComputeFacts inspects one package and records facts about its
	// objects. It is called sequentially in dependency order, so unlike
	// Run it may assume single-threaded access and that imported
	// packages' facts are already present.
	ComputeFacts(p *Pass)
}

// factKey addresses one fact: a program object and an analyzer-chosen
// fact name.
type factKey struct {
	obj  types.Object
	name string
}

// Facts is the cross-package fact table shared by one engine run. The
// fact phase writes it single-threaded; the diagnostic phase reads it
// from many goroutines, so reads after the phase switch are guarded by
// an RWMutex (writes during the diagnostic phase are a programming
// error but are tolerated and stay race-free).
type Facts struct {
	mu sync.RWMutex
	m  map[factKey]any
}

// NewFacts returns an empty fact table.
func NewFacts() *Facts {
	return &Facts{m: map[factKey]any{}}
}

// Set records fact name about obj with value v, replacing any prior
// value.
func (f *Facts) Set(obj types.Object, name string, v any) {
	if obj == nil {
		return
	}
	f.mu.Lock()
	f.m[factKey{obj, name}] = v
	f.mu.Unlock()
}

// Get returns the fact name recorded about obj, or (nil, false).
func (f *Facts) Get(obj types.Object, name string) (any, bool) {
	if obj == nil {
		return nil, false
	}
	f.mu.RLock()
	v, ok := f.m[factKey{obj, name}]
	f.mu.RUnlock()
	return v, ok
}

// Has reports whether fact name is recorded about obj.
func (f *Facts) Has(obj types.Object, name string) bool {
	_, ok := f.Get(obj, name)
	return ok
}

// CallSite is one statically resolved call: the named function (or
// method) enclosing the call expression, the callee it resolves to, and
// the call's position. Calls inside function literals are attributed to
// the enclosing named function, so reachability flows through the
// closures the pipeline code leans on. Indirect calls — through
// function values or interface methods — do not resolve and are absent;
// that is the loophole the faultfs.FS seam exploits on purpose: code
// holding only the interface cannot statically reach the os package.
type CallSite struct {
	// Caller is the enclosing named function or method.
	Caller *types.Func
	// Callee is the statically resolved target.
	Callee *types.Func
	// Pos is the call expression's position.
	Pos token.Pos
}

// CallGraph is the module-wide static call graph, built once per engine
// run from the type-checker's resolution maps. It is immutable after
// construction and safe for concurrent reads.
type CallGraph struct {
	// calls maps each caller to its resolved call sites in source order.
	calls map[*types.Func][]CallSite
}

// CallsFrom returns fn's statically resolved call sites in source
// order. The returned slice is shared; callers must not mutate it.
func (g *CallGraph) CallsFrom(fn *types.Func) []CallSite {
	if g == nil || fn == nil {
		return nil
	}
	return g.calls[fn]
}

// Callers returns every function with at least one resolved call site,
// sorted by full name for determinism.
func (g *CallGraph) Callers() []*types.Func {
	if g == nil {
		return nil
	}
	fns := make([]*types.Func, 0, len(g.calls))
	for fn := range g.calls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	return fns
}

// BuildCallGraph resolves the static call graph of a set of packages.
// The engine builds one over the whole module before the fact phase;
// analysistest builds one over a fixture and its helper packages.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{calls: map[*types.Func][]CallSite{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok {
					g.addFunc(p.Info, fd)
				}
			}
		}
	}
	return g
}

// addFunc records every resolved call lexically inside fd, including
// calls inside nested function literals, under fd's object.
func (g *CallGraph) addFunc(info *types.Info, fd *ast.FuncDecl) {
	caller, _ := info.Defs[fd.Name].(*types.Func)
	if caller == nil || fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := resolveCallee(info, call)
		if callee == nil {
			return true
		}
		g.calls[caller] = append(g.calls[caller], CallSite{
			Caller: caller,
			Callee: callee,
			Pos:    call.Pos(),
		})
		return true
	})
}

// resolveCallee resolves a call expression to the function or method it
// statically invokes. Interface method calls and calls through function
// values return nil: they have no static target.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
		if f, ok := info.Defs[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// A method selected off an interface value has no static
			// body; reporting it as the callee would let reachability
			// facts tunnel through the very seam they exist to protect.
			if recv := f.Type().(*types.Signature).Recv(); recv != nil {
				if types.IsInterface(recv.Type()) {
					return nil
				}
			}
			return f
		}
		// Package-qualified call: os.Create, faultfs.ReadFile, ...
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
