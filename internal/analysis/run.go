package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// Result is the outcome of running a set of analyzers over packages.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings, sorted by
	// file, line, column, analyzer.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// Packages counts the packages analyzed.
	Packages int
}

// Run executes every analyzer over every package, in parallel across
// (package, analyzer) pairs, applies suppressions, and returns the
// sorted findings. Analyzer Run methods must be concurrency-safe.
func Run(mod *Module, pkgs []*Package, analyzers []Analyzer) *Result {
	type unit struct {
		pkg *Package
		an  Analyzer
	}
	var units []unit
	for _, p := range pkgs {
		for _, a := range analyzers {
			units = append(units, unit{p, a})
		}
	}

	results := make([][]Diagnostic, len(units))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(units) {
					return
				}
				u := units[i]
				pass := &Pass{
					Fset:    mod.Fset,
					Pkg:     u.pkg.Types,
					PkgPath: u.pkg.Path,
					Files:   u.pkg.Files,
					Info:    u.pkg.Info,
				}
				results[i] = u.an.Run(pass)
			}
		}()
	}
	wg.Wait()

	res := &Result{Packages: len(pkgs)}
	for _, p := range pkgs {
		sups, malformed := collectSuppressions(p, mod.Fset)
		res.Diagnostics = append(res.Diagnostics, malformed...)
		for i, u := range units {
			if u.pkg != p {
				continue
			}
			for _, d := range results[i] {
				if suppressed(d, sups) {
					res.Suppressed++
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// WriteText renders findings one per line in file:line:col form.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	diags := r.Diagnostics
	if diags == nil {
		diags = []Diagnostic{}
	}
	return enc.Encode(diags)
}
