package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Result is the outcome of running a set of analyzers over packages.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings, sorted by
	// file, line, column, analyzer.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// Packages counts the packages analyzed.
	Packages int
}

// Fixable counts diagnostics that carry at least one suggested fix.
func (r *Result) Fixable() int {
	n := 0
	for _, d := range r.Diagnostics {
		if len(d.Fixes) > 0 {
			n++
		}
	}
	return n
}

// Run executes analyzers over packages in two phases. The fact phase
// walks every package of the module (not just the selected ones) in
// dependency order and gives each FactComputer analyzer a chance to
// export facts; by construction a package's imports are fact-complete
// before the package itself is visited. The diagnostic phase then runs
// every analyzer over the selected packages, in parallel across
// (package, analyzer) pairs, applies suppressions, reports unused
// suppressions, and returns the sorted findings. Analyzer Run methods
// must be concurrency-safe; ComputeFacts methods need not be.
func Run(mod *Module, pkgs []*Package, analyzers []Analyzer) *Result {
	facts := NewFacts()
	graph := BuildCallGraph(mod.Fset, mod.Packages)
	passFor := func(p *Package) *Pass {
		return &Pass{
			Fset:    mod.Fset,
			Pkg:     p.Types,
			PkgPath: p.Path,
			Files:   p.Files,
			Info:    p.Info,
			Facts:   facts,
			Graph:   graph,
		}
	}

	// Fact phase: sequential, dependency order, whole module — facts
	// must be complete even for packages outside the selection, or a
	// selected package's cross-package findings would depend on which
	// patterns the user happened to pass.
	for _, p := range mod.Packages {
		pass := passFor(p)
		for _, a := range analyzers {
			if fc, ok := a.(FactComputer); ok {
				fc.ComputeFacts(pass)
			}
		}
	}

	// Diagnostic phase: parallel over (package, analyzer) units.
	type unit struct {
		pkg *Package
		an  Analyzer
	}
	var units []unit
	for _, p := range pkgs {
		for _, a := range analyzers {
			units = append(units, unit{p, a})
		}
	}

	results := make([][]Diagnostic, len(units))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(units) {
					return
				}
				results[i] = units[i].an.Run(passFor(units[i].pkg))
			}
		}()
	}
	wg.Wait()

	// The analyzer name set decides which suppressions are fully
	// checkable for the unused-suppression report: a directive naming
	// an analyzer that did not run might well be used on a full run.
	ranNames := map[string]bool{"lint": true}
	for _, a := range analyzers {
		ranNames[a.Name()] = true
	}

	res := &Result{Packages: len(pkgs)}
	for _, p := range pkgs {
		sups, malformed := collectSuppressions(p, mod.Fset)
		res.Diagnostics = append(res.Diagnostics, malformed...)
		for i, u := range units {
			if u.pkg != p {
				continue
			}
			for _, d := range results[i] {
				if s := suppressing(d, sups); s != nil {
					s.used = true
					res.Suppressed++
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
		res.Diagnostics = append(res.Diagnostics, unusedSuppressions(sups, ranNames)...)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// unusedSuppressions reports suppressions that silenced nothing even
// though every analyzer they name did run — dead directives that would
// otherwise hide future findings at their line forever. Each carries a
// deletion fix.
func unusedSuppressions(sups []*suppression, ranNames map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, s := range sups {
		if s.used {
			continue
		}
		checkable := true
		for n := range s.names {
			if !ranNames[n] {
				checkable = false
				break
			}
		}
		if !checkable {
			continue
		}
		names := make([]string, 0, len(s.names))
		for n := range s.names {
			names = append(names, n)
		}
		sort.Strings(names)
		diags = append(diags, Diagnostic{
			Analyzer: "lint",
			Pos:      s.pos,
			Message:  fmt.Sprintf("unused //lint:ignore suppression for %s: it silences nothing", strings.Join(names, ",")),
			File:     s.pos.Filename,
			Line:     s.pos.Line,
			Col:      s.pos.Column,
			Fixes: []SuggestedFix{{
				Message: "delete the unused suppression",
				File:    s.pos.Filename,
				Start:   s.pos.Offset,
				End:     s.endOffset,
			}},
		})
	}
	return diags
}

// WriteText renders findings one per line in file:line:col form.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	diags := r.Diagnostics
	if diags == nil {
		diags = []Diagnostic{}
	}
	return enc.Encode(diags)
}
