package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by diags to the files
// on disk, in place. Edits within one file are applied from the end
// backwards so earlier offsets stay valid; overlapping edits are
// detected and the later one is skipped (reported in skipped). Pure
// deletions that leave a line holding only whitespace take the whole
// line with them. Edited files are re-rendered through gofmt; a file
// a fix breaks beyond parsing is not written, its edits count as
// skipped, and fixing continues with the next file.
//
// It returns the number of files rewritten and the number of edits
// applied and skipped.
func ApplyFixes(diags []Diagnostic) (files, applied, skipped int, err error) {
	byFile := map[string][]SuggestedFix{}
	for _, d := range diags {
		for _, f := range d.Fixes {
			if f.File == "" || f.Start < 0 || f.End < f.Start {
				skipped++
				continue
			}
			byFile[f.File] = append(byFile[f.File], f)
		}
	}
	paths := make([]string, 0, len(byFile))
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, path := range paths {
		edits := byFile[path]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return files, applied, skipped, fmt.Errorf("analysis: fix %s: %w", path, rerr)
		}
		out := data
		n := 0
		prevStart := len(data) + 1
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			if e.End > len(out) || e.End > prevStart {
				skipped++ // out of range, or overlaps the edit after it
				continue
			}
			start, end := e.Start, e.End
			if e.NewText == "" {
				start, end = widenDeletionToLine(out, start, end)
			}
			out = append(out[:start:start], append([]byte(e.NewText), out[end:]...)...)
			prevStart = start
			n++
		}
		if n == 0 {
			continue
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			// The edit produced unparsable code: leave the file alone
			// rather than break the build.
			skipped += n
			continue
		}
		if werr := os.WriteFile(path, formatted, 0o644); werr != nil {
			return files, applied, skipped, fmt.Errorf("analysis: fix %s: %w", path, werr)
		}
		files++
		applied += n
	}
	return files, applied, skipped, nil
}

// widenDeletionToLine extends a deletion of [start, end) to swallow the
// whole line — including the trailing newline — when everything else on
// the line is whitespace, so deleting a standalone comment does not
// leave a blank line behind.
func widenDeletionToLine(data []byte, start, end int) (int, int) {
	ls := start
	for ls > 0 && data[ls-1] != '\n' {
		ls--
	}
	le := end
	for le < len(data) && data[le] != '\n' {
		le++
	}
	if !allSpace(data[ls:start]) || !allSpace(data[end:le]) {
		return start, end
	}
	if le < len(data) {
		le++ // take the newline too
	}
	return ls, le
}

func allSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}
