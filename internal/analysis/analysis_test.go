package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file map under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module tinymod\n\ngo 1.22\n"

// TestLoadResolvesIntraModuleImports: package b imports package a; the
// loader must type-check them in dependency order and expose both.
func TestLoadResolvesIntraModuleImports(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":         goMod,
		"a/a.go":         "package a\n\nfunc Value() int { return 42 }\n",
		"b/b.go":         "package b\n\nimport \"tinymod/a\"\n\nfunc Double() int { return 2 * a.Value() }\n",
		"b/b2.go":        "package b\n\nvar extra = Double()\n",
		"_skip/s.go":     "package broken !!!\n",
		"testdata/fx.go": "package alsobroken {{{\n",
		"vendor/v/v.go":  "package v ???\n",
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "tinymod" {
		t.Errorf("module path = %q, want tinymod", mod.Path)
	}
	var paths []string
	for _, p := range mod.Packages {
		paths = append(paths, p.Path)
	}
	if len(paths) != 2 {
		t.Fatalf("loaded %v, want exactly [tinymod/a tinymod/b]", paths)
	}
	// Dependency order: a must come before its importer b.
	if paths[0] != "tinymod/a" || paths[1] != "tinymod/b" {
		t.Errorf("packages out of dependency order: %v", paths)
	}
	if got := len(mod.Packages[1].Files); got != 2 {
		t.Errorf("package b has %d files, want 2", got)
	}
	for _, p := range mod.Packages {
		if p.Types == nil || p.Info == nil {
			t.Errorf("package %s missing type info", p.Path)
		}
	}
}

// TestLoadReportsTypeErrors: a module that does not type-check must
// fail loudly, not produce half-checked packages.
func TestLoadReportsTypeErrors(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"a/a.go": "package a\n\nfunc f() int { return \"not an int\" }\n",
	})
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a module with type errors")
	}
}

// TestFindModuleRootWalksUp: Load from a nested directory finds the
// enclosing go.mod.
func TestFindModuleRootWalksUp(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":    goMod,
		"deep/x.go": "package deep\n",
	})
	root, err := FindModuleRoot(filepath.Join(dir, "deep"))
	if err != nil {
		t.Fatal(err)
	}
	if resolved, _ := filepath.EvalSymlinks(dir); root != dir && root != resolved {
		t.Errorf("root = %q, want %q", root, dir)
	}
}

// TestMatch pins the pattern grammar the driver documents.
func TestMatch(t *testing.T) {
	mod := &Module{Path: "tinymod"}
	core := &Package{Path: "tinymod/internal/core"}
	rootPkg := &Package{Path: "tinymod"}
	cases := []struct {
		pkg     *Package
		pattern string
		want    bool
	}{
		{core, "./...", true},
		{rootPkg, "./...", true},
		{core, "./internal/...", true},
		{core, "./internal/core", true},
		{core, "./internal/kmeans", false},
		{core, ".", false},
		{rootPkg, ".", true},
		{core, "./cmd/...", false},
	}
	for _, c := range cases {
		if got := mod.Match(c.pkg, c.pattern); got != c.want {
			t.Errorf("Match(%s, %q) = %v, want %v", c.pkg.Path, c.pattern, got, c.want)
		}
	}
}

// loadOne loads a single-package module and stashes its fset in
// modFset for the suppression scanner.
func loadOne(t *testing.T, src string) *Package {
	t.Helper()
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": src,
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	modFset = mod.Fset
	return mod.Packages[0]
}

// modFset holds the fset of the most recent loadOne module.
var modFset *token.FileSet

// TestSuppressionScope: a directive silences its own line and the line
// below, for the named analyzer, in the same file only.
func TestSuppressionScope(t *testing.T) {
	pkg := loadOne(t, `package p

//lint:ignore demo,other covered by an invariant elsewhere
var a = 1

var b = 2 //lint:ignore demo end-of-line form
`)
	sups, diags := collectSuppressions(pkg, modFset)
	if len(diags) != 0 {
		t.Fatalf("unexpected malformed-directive diags: %v", diags)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(sups))
	}
	file := sups[0].pos.Filename
	mk := func(an string, line int) Diagnostic {
		return Diagnostic{Analyzer: an, File: file, Line: line}
	}
	if suppressing(mk("demo", 4), sups) == nil {
		t.Error("line below standalone directive not suppressed")
	}
	if suppressing(mk("other", 4), sups) == nil {
		t.Error("second analyzer in comma list not suppressed")
	}
	if suppressing(mk("demo", 6), sups) == nil {
		t.Error("end-of-line directive did not suppress its own line")
	}
	if suppressing(mk("demo", 5), sups) != nil {
		t.Error("suppression leaked past its line+1 window")
	}
	if suppressing(mk("unrelated", 4), sups) != nil {
		t.Error("suppression silenced an analyzer it does not name")
	}
	if suppressing(Diagnostic{Analyzer: "demo", File: "elsewhere.go", Line: 4}, sups) != nil {
		t.Error("suppression crossed a file boundary")
	}
}

// TestMalformedSuppression: a directive without a reason becomes a
// "lint" diagnostic instead of a silent switch-off.
func TestMalformedSuppression(t *testing.T) {
	pkg := loadOne(t, `package p

//lint:ignore demo
var a = 1
`)
	sups, diags := collectSuppressions(pkg, modFset)
	if len(sups) != 0 {
		t.Fatalf("malformed directive produced a suppression: %+v", sups)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lint" {
		t.Fatalf("diags = %+v, want one under analyzer \"lint\"", diags)
	}
}

// TestRunEndToEnd: Run applies analyzers, drops suppressed findings,
// counts them, and renders both output modes deterministically.
func TestRunEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": `package p

func cmp(a, b float64) bool { return a == b }

func fine(a, b float64) bool {
	//lint:ignore demo tested elsewhere
	return a != b
}
`,
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(mod, mod.Packages, []Analyzer{demoAnalyzer{}})
	if res.Packages != 1 {
		t.Errorf("Packages = %d, want 1", res.Packages)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("Diagnostics = %+v, want exactly the unsuppressed one", res.Diagnostics)
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
	d := res.Diagnostics[0]
	if d.Line != 3 || d.Analyzer != "demo" {
		t.Errorf("diagnostic = %+v, want demo at line 3", d)
	}

	var text bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "p.go:3:") {
		t.Errorf("text output missing position: %q", text.String())
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, &js)
	}
	if len(parsed) != 1 || parsed[0]["analyzer"] != "demo" {
		t.Errorf("JSON = %s", &js)
	}
}

// demoAnalyzer flags every float equality comparison; just enough to
// exercise the runner without depending on the real analyzers package
// (which would be an import cycle through analysistest).
type demoAnalyzer struct{}

func (demoAnalyzer) Name() string { return "demo" }
func (demoAnalyzer) Doc() string  { return "flags float comparisons (test-only)" }

func (demoAnalyzer) Run(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if t, ok := p.Info.TypeOf(be.X).(*types.Basic); ok && t.Info()&types.IsFloat != 0 {
				diags = append(diags, p.Diagf("demo", be.Pos(), "float comparison"))
			}
			return true
		})
	}
	return diags
}
