package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"go/ast"
	"go/types"
)

// lookupFunc resolves a package-level function by name.
func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s is %T, want *types.Func", name, obj)
	}
	return fn
}

// TestCallGraphResolution pins the static call graph's semantics: named
// callees resolve, calls inside closures are attributed to the
// enclosing named function, and interface method calls resolve to
// nothing — that opacity is what makes seam-shaped code clean.
func TestCallGraphResolution(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": `package p

type Seam interface{ Do() }

func leaf() {}

func caller() { leaf() }

func viaClosure() {
	f := func() { leaf() }
	f()
}

func viaInterface(s Seam) { s.Do() }
`,
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg := mod.Packages[0]
	graph := BuildCallGraph(mod.Fset, mod.Packages)

	leaf := lookupFunc(t, pkg, "leaf")
	callsTo := func(from *types.Func, to *types.Func) int {
		n := 0
		for _, site := range graph.CallsFrom(from) {
			if site.Callee == to {
				n++
			}
		}
		return n
	}
	if n := callsTo(lookupFunc(t, pkg, "caller"), leaf); n != 1 {
		t.Errorf("caller -> leaf edges = %d, want 1", n)
	}
	if n := callsTo(lookupFunc(t, pkg, "viaClosure"), leaf); n != 1 {
		t.Errorf("closure call not attributed to enclosing function (edges = %d, want 1)", n)
	}
	for _, site := range graph.CallsFrom(lookupFunc(t, pkg, "viaInterface")) {
		if site.Callee != nil && site.Callee.Name() == "Do" {
			t.Errorf("interface method call resolved statically to %v; the seam must stay opaque", site.Callee)
		}
	}
}

// factProducer marks package-level functions whose name starts with
// Unsafe; factConsumer flags every call site of a marked function. The
// pair proves facts cross package boundaries through the engine.
type factProducer struct{}

func (factProducer) Name() string { return "producer" }
func (factProducer) Doc() string  { return "marks Unsafe* functions (test-only)" }
func (factProducer) Run(p *Pass) []Diagnostic {
	return nil
}
func (factProducer) ComputeFacts(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || !strings.HasPrefix(fd.Name.Name, "Unsafe") {
				return true
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				p.Facts.Set(fn, "test.unsafe", true)
			}
			return true
		})
	}
}

type factConsumer struct{}

func (factConsumer) Name() string { return "consumer" }
func (factConsumer) Doc() string  { return "flags calls to marked functions (test-only)" }
func (factConsumer) Run(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, caller := range p.Graph.Callers() {
		if caller.Pkg() == nil || caller.Pkg().Path() != p.PkgPath {
			continue
		}
		for _, site := range p.Graph.CallsFrom(caller) {
			if p.Facts.Has(site.Callee, "test.unsafe") {
				diags = append(diags, p.Diagf("consumer", site.Pos, "call to unsafe %s", site.Callee.Name()))
			}
		}
	}
	return diags
}

// TestFactsCrossPackage: the producer's fact is exported from package a
// during the fact phase (which covers the whole module), so the
// consumer sees it when analyzing only package b.
func TestFactsCrossPackage(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"a/a.go": "package a\n\nfunc UnsafeThing() {}\n",
		"b/b.go": "package b\n\nimport \"tinymod/a\"\n\nfunc use() { a.UnsafeThing() }\n",
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var onlyB []*Package
	for _, p := range mod.Packages {
		if p.Path == "tinymod/b" {
			onlyB = append(onlyB, p)
		}
	}
	res := Run(mod, onlyB, []Analyzer{factProducer{}, factConsumer{}})
	if len(res.Diagnostics) != 1 || !strings.Contains(res.Diagnostics[0].Message, "UnsafeThing") {
		t.Fatalf("Diagnostics = %+v, want one consumer finding about UnsafeThing", res.Diagnostics)
	}
	if !strings.HasSuffix(res.Diagnostics[0].File, "b.go") {
		t.Errorf("finding in %s, want b.go", res.Diagnostics[0].File)
	}
}

// TestUnusedSuppression: a directive that silences nothing becomes a
// "lint" finding with a deletion fix — but only when every analyzer it
// names actually ran, so -only subsets cannot produce false positives.
func TestUnusedSuppression(t *testing.T) {
	src := `package p

func add(a, b int) int {
	//lint:ignore demo the comparison moved elsewhere
	return a + b
}
`
	dir := writeTree(t, map[string]string{"go.mod": goMod, "p/p.go": src})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(mod, mod.Packages, []Analyzer{demoAnalyzer{}})
	if len(res.Diagnostics) != 1 {
		t.Fatalf("Diagnostics = %+v, want one unused-suppression finding", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "unused //lint:ignore suppression for demo") {
		t.Errorf("diagnostic = %+v", d)
	}
	if len(d.Fixes) != 1 || d.Fixes[0].NewText != "" {
		t.Fatalf("fixes = %+v, want one deletion", d.Fixes)
	}

	// The named analyzer did not run: the suppression might be load-bearing.
	res = Run(mod, mod.Packages, []Analyzer{factProducer{}})
	if len(res.Diagnostics) != 0 {
		t.Errorf("subset run reported %+v; unused check must require the named analyzer", res.Diagnostics)
	}

	// Applying the deletion removes the whole directive line.
	res = Run(mod, mod.Packages, []Analyzer{demoAnalyzer{}})
	files, applied, skipped, err := ApplyFixes(res.Diagnostics)
	if err != nil || files != 1 || applied != 1 || skipped != 0 {
		t.Fatalf("ApplyFixes = (%d, %d, %d, %v), want (1, 1, 0, nil)", files, applied, skipped, err)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "p", "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "lint:ignore") {
		t.Errorf("directive survived its deletion fix:\n%s", fixed)
	}
	if strings.Contains(string(fixed), "\n\n\treturn") {
		t.Errorf("deletion left a blank line behind:\n%s", fixed)
	}
}

// TestApplyFixesEdits pins the edit mechanics: replacements apply from
// the end backwards, overlapping edits are skipped, and a fix that
// breaks the file beyond parsing leaves it untouched.
func TestApplyFixesEdits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	src := "package p\n\nvar a = \"old\"\nvar b = \"old\"\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	first := strings.Index(src, "old")
	second := strings.LastIndex(src, "old")
	stmt := strings.Index(src, "var a")
	stmtEnd := stmt + len("var a = \"old\"")
	diags := []Diagnostic{{
		Fixes: []SuggestedFix{
			{File: path, Start: first, End: first + 3, NewText: "new"},
			{File: path, Start: second, End: second + 3, NewText: "newer"},
			// Overlaps the first edit; on overlap the later-start edit
			// wins, so this whole-statement rewrite is the one skipped.
			{File: path, Start: stmt, End: stmtEnd, NewText: "var a = \"dup\""},
		},
	}}
	files, applied, skipped, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 || applied != 2 || skipped != 1 {
		t.Errorf("ApplyFixes = (%d, %d, %d), want (1, 2, 1)", files, applied, skipped)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nvar a = \"new\"\nvar b = \"newer\"\n"
	if string(got) != want {
		t.Errorf("fixed file = %q, want %q", got, want)
	}

	// A fix that destroys the syntax must not be written.
	breaking := []Diagnostic{{
		Fixes: []SuggestedFix{{File: path, Start: 0, End: 7, NewText: "pack!!!"}},
	}}
	files, applied, skipped, err = ApplyFixes(breaking)
	if err != nil {
		t.Fatal(err)
	}
	if files != 0 || applied != 0 || skipped != 1 {
		t.Errorf("breaking fix = (%d, %d, %d), want (0, 0, 1)", files, applied, skipped)
	}
	after, _ := os.ReadFile(path)
	if string(after) != want {
		t.Errorf("breaking fix modified the file:\n%s", after)
	}
}

// TestWriteSARIFGolden locks the SARIF serialization byte for byte.
// Refresh with UPDATE_GOLDEN=1 go test ./internal/analysis -run SARIF.
func TestWriteSARIFGolden(t *testing.T) {
	res := &Result{
		Diagnostics: []Diagnostic{
			{
				Analyzer: "demo",
				Message:  "float comparison",
				File:     "/mod/internal/core/quantize.go",
				Line:     42,
				Col:      17,
			},
			{
				Analyzer: "lint",
				Message:  "unused //lint:ignore suppression for demo: it silences nothing",
				File:     "/mod/cmd/tool/main.go",
				Line:     7,
				Col:      2,
			},
			{
				Analyzer: "unregistered",
				Message:  "finding from an analyzer outside the declared set",
				File:     "/mod/x.go",
				Line:     1,
				Col:      1,
			},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteSARIF(&buf, "/mod", []Analyzer{demoAnalyzer{}}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (refresh with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
