package analysis

import (
	"go/token"
	"strings"
)

// suppressionDirective is the comment prefix that silences a finding.
const suppressionDirective = "//lint:ignore"

// suppression is one parsed //lint:ignore comment. It silences the
// named analyzers on its own line (end-of-line form) and on the line
// immediately below it (standalone form).
type suppression struct {
	names map[string]bool
	file  string
	line  int
}

// collectSuppressions scans a package's comments for lint:ignore
// directives. Malformed directives — a missing analyzer list or a
// missing reason — are themselves reported as diagnostics under the
// reserved analyzer name "lint", so suppressions can never silently
// rot into bare switch-offs.
func collectSuppressions(p *Package, fset *token.FileSet) ([]suppression, []Diagnostic) {
	var sups []suppression
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressionDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, suppressionDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //lint:ignorefoo — not this directive
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer>[,<analyzer>...] <reason>\"",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				sups = append(sups, suppression{names: names, file: pos.Filename, line: pos.Line})
			}
		}
	}
	return sups, diags
}

// suppressed reports whether d is silenced by any suppression: one on
// the diagnostic's own line, or one on the line directly above it.
func suppressed(d Diagnostic, sups []suppression) bool {
	for _, s := range sups {
		if !s.names[d.Analyzer] {
			continue
		}
		if d.File == "" || s.file != d.File {
			continue
		}
		if s.line == d.Line || s.line == d.Line-1 {
			return true
		}
	}
	return false
}
