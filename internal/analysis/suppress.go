package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// suppressionDirective is the comment prefix that silences a finding.
const suppressionDirective = "//lint:ignore"

// suppression is one parsed //lint:ignore comment. It silences the
// named analyzers on its own line (end-of-line form) and on the line
// immediately below it (standalone form).
type suppression struct {
	names     map[string]bool
	pos       token.Position // of the directive comment
	endOffset int            // byte offset just past the comment text
	used      bool           // set when the suppression silenced a finding
}

// collectSuppressions scans a package's comments for lint:ignore
// directives. Malformed directives — a missing analyzer list, a missing
// or whitespace-only reason, or non-canonical spacing — are themselves
// reported as diagnostics under the reserved analyzer name "lint", so
// suppressions can never silently rot into bare switch-offs. Spacing
// findings carry a normalization fix.
func collectSuppressions(p *Package, fset *token.FileSet) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressionDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, suppressionDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //lint:ignorefoo — not this directive
				}
				pos := fset.Position(c.Pos())
				lintDiag := func(format string, args ...any) Diagnostic {
					return Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf(format, args...),
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
					}
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, lintDiag(
						"malformed //lint:ignore: the reason is mandatory; want \"//lint:ignore <analyzer>[,<analyzer>...] <reason>\""))
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				if len(names) == 0 {
					diags = append(diags, lintDiag(
						"malformed //lint:ignore: empty analyzer list"))
					continue
				}
				endPos := fset.Position(c.End())
				if canon := canonicalDirective(names, fields[1:]); c.Text != canon {
					d := lintDiag("non-canonical //lint:ignore spacing; run -fix to normalize")
					d.Fixes = []SuggestedFix{{
						Message: "normalize the suppression directive",
						File:    pos.Filename,
						Start:   pos.Offset,
						End:     endPos.Offset,
						NewText: canon,
					}}
					diags = append(diags, d)
					// The directive still works while non-canonical:
					// fall through and record it.
				}
				sups = append(sups, &suppression{
					names:     names,
					pos:       pos,
					endOffset: endPos.Offset,
				})
			}
		}
	}
	return sups, diags
}

// canonicalDirective renders the one accepted spelling of a
// suppression: single spaces, analyzer names sorted and
// comma-separated without spaces.
func canonicalDirective(names map[string]bool, reasonFields []string) string {
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	return suppressionDirective + " " + strings.Join(sorted, ",") + " " + strings.Join(reasonFields, " ")
}

// suppressing returns the suppression silencing d — one on the
// diagnostic's own line, or one on the line directly above it — or nil.
func suppressing(d Diagnostic, sups []*suppression) *suppression {
	for _, s := range sups {
		if !s.names[d.Analyzer] {
			continue
		}
		if d.File == "" || s.pos.Filename != d.File {
			continue
		}
		if s.pos.Line == d.Line || s.pos.Line == d.Line-1 {
			return s
		}
	}
	return nil
}
