package analyzers

import (
	"go/ast"
	"go/types"

	"numarck/internal/analysis"
)

// Waitgroup flags the three sync.WaitGroup/Mutex misuse patterns that
// would corrupt NUMARCK's goroutine-parallel k-means assignment and
// distributed encode paths:
//
//  1. wg.Add called inside the spawned goroutine it accounts for — the
//     classic race where Wait can return before the goroutine is
//     counted;
//  2. wg.Wait appearing before any wg.Add in the same statement block —
//     the Wait is a no-op barrier;
//  3. sync.WaitGroup, sync.Mutex or sync.RWMutex copied by value
//     (parameters, results, assignments, call arguments) — the copy
//     guards nothing.
type Waitgroup struct{}

// Name implements analysis.Analyzer.
func (Waitgroup) Name() string { return "waitgroup" }

// Doc implements analysis.Analyzer.
func (Waitgroup) Doc() string {
	return "flags wg.Add inside the spawned goroutine, Wait before Add, and sync primitives copied by value"
}

// Run implements analysis.Analyzer.
func (Waitgroup) Run(p *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, f := range p.Files {
		diags = append(diags, addInsideGoroutine(p, f)...)
		diags = append(diags, waitBeforeAdd(p, f)...)
		diags = append(diags, copiedByValue(p, f)...)
	}
	return diags
}

// wgCall matches a call expression of the form wg.<method>(...) on a
// sync.WaitGroup and returns the receiver's root object.
func wgCall(info *types.Info, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	t := info.TypeOf(sel.X)
	if t == nil || !isSyncNamed(t, "WaitGroup") {
		return nil
	}
	id := rootIdent(sel.X)
	if id == nil {
		return nil
	}
	return objectOf(info, id)
}

// addInsideGoroutine reports wg.Add calls inside a `go func(){...}()`
// body when wg is declared outside that goroutine.
func addInsideGoroutine(p *analysis.Pass, f *ast.File) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := wgCall(p.Info, call, "Add")
			if obj == nil || declaredWithin(obj, lit) {
				return true
			}
			diags = append(diags, p.Diagf("waitgroup", call.Pos(),
				"%s.Add inside the spawned goroutine races its own Wait; call Add before the go statement", obj.Name()))
			return true
		})
		return true
	})
	return diags
}

// waitBeforeAdd reports wg.Wait statements that lexically precede every
// wg.Add of the same WaitGroup in the same statement block. The check
// is deliberately block-local: across blocks, loop bodies and helper
// calls legitimately reorder the two.
func waitBeforeAdd(p *analysis.Pass, f *ast.File) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		type firstUse struct {
			addIdx  int
			waitIdx int
			wait    *ast.CallExpr
		}
		uses := map[types.Object]*firstUse{}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if obj := wgCall(p.Info, call, "Add"); obj != nil {
				u := uses[obj]
				if u == nil {
					u = &firstUse{addIdx: -1, waitIdx: -1}
					uses[obj] = u
				}
				if u.addIdx < 0 {
					u.addIdx = i
				}
			}
			if obj := wgCall(p.Info, call, "Wait"); obj != nil {
				u := uses[obj]
				if u == nil {
					u = &firstUse{addIdx: -1, waitIdx: -1}
					uses[obj] = u
				}
				if u.waitIdx < 0 {
					u.waitIdx = i
					u.wait = call
				}
			}
		}
		for obj, u := range uses {
			if u.waitIdx >= 0 && u.addIdx >= 0 && u.waitIdx < u.addIdx {
				diags = append(diags, p.Diagf("waitgroup", u.wait.Pos(),
					"%s.Wait before %s.Add in the same block waits for nothing", obj.Name(), obj.Name()))
			}
		}
		return true
	})
	return diags
}

// copiedByValue reports by-value copies of sync.WaitGroup/Mutex/RWMutex
// (or structs containing them): function parameters and results,
// assignments from addressable expressions, and call arguments.
func copiedByValue(p *analysis.Pass, f *ast.File) []analysis.Diagnostic {
	var diags []analysis.Diagnostic

	report := func(pos ast.Node, what, lock string) {
		diags = append(diags, p.Diagf("waitgroup", pos.Pos(),
			"%s copies %s by value; use a pointer", what, lock))
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(p, v.Type.Params, "parameter", report)
			checkFieldList(p, v.Type.Results, "result", report)
		case *ast.FuncLit:
			checkFieldList(p, v.Type.Params, "parameter", report)
			checkFieldList(p, v.Type.Results, "result", report)
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				// `_ = x` is the discard idiom, not a live copy.
				if len(v.Lhs) == len(v.Rhs) {
					if id, ok := v.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if !addressable(rhs) {
					continue
				}
				t := p.Info.TypeOf(rhs)
				if t == nil {
					continue
				}
				if lock := containsLockByValue(t); lock != "" {
					report(rhs, "assignment", lock)
				}
			}
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[v.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range v.Args {
				if !addressable(arg) {
					continue
				}
				t := p.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if lock := containsLockByValue(t); lock != "" {
					report(arg, "call argument", lock)
				}
			}
		}
		return true
	})
	return diags
}

func checkFieldList(p *analysis.Pass, fl *ast.FieldList, what string, report func(ast.Node, string, string)) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if lock := containsLockByValue(t); lock != "" {
			report(field, what, lock)
		}
	}
}

// addressable approximates "expression denotes existing storage":
// copying from it duplicates live state, unlike a fresh composite
// literal or a constructor's return value.
func addressable(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
