// Package analyzers holds the repo-specific static-analysis passes run
// by cmd/numarcklint. Each analyzer encodes one NUMARCK correctness
// invariant: exact floating-point comparison discipline (floatcmp),
// sound sync.WaitGroup use in the goroutine-parallel paths (waitgroup),
// cancellable goroutine channel sends (ctxleak), no dropped errors on
// the persistence paths (errcheck), truncation-free bin-index
// conversions (bindex), a fully documented public surface (doccomment),
// the faultfs filesystem seam on the durability paths (fsseam), op+path
// error wrapping on the store packages (errwrap), no mixed
// atomic/plain field access (atomicfield), accounted-for goroutines in
// the pipeline package (goroleak), and registry-only obs stage names
// with leak-free timers (obsstage).
//
// The last five lean on the engine's fact phase (analysis.FactComputer)
// and call graph for cross-package, interprocedural reasoning; the
// first six are package-local.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"numarck/internal/analysis"
)

// All returns every analyzer, in stable order.
func All() []analysis.Analyzer {
	return []analysis.Analyzer{
		Floatcmp{},
		Waitgroup{},
		Ctxleak{},
		Errcheck{},
		Bindex{},
		Doccomment{},
		Fsseam{},
		Errwrap{},
		Atomicfield{},
		Goroleak{},
		Obsstage{},
	}
}

// inScope reports whether pkgPath is one of the listed module packages
// (or a subpackage of one). Fixture packages loaded by analysistest
// ("fixture/...") are always in scope, so every analyzer is testable
// without replicating the real module layout.
func inScope(pkgPath string, pkgs ...string) bool {
	if strings.HasPrefix(pkgPath, "fixture/") {
		return true
	}
	for _, p := range pkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// funcsOf returns the named functions and methods declared in the
// pass's files, in source order, paired with their declarations.
func funcsOf(p *analysis.Pass) []funcDecl {
	var out []funcDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out = append(out, funcDecl{fn: fn, decl: fd})
			}
		}
	}
	return out
}

// funcDecl pairs a function object with its syntax.
type funcDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

// inspectStack walks root like ast.Inspect but hands the visitor the
// stack of enclosing nodes (outermost first, not including n itself).
func inspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		enter := f(n, stack)
		if enter {
			stack = append(stack, n)
		}
		return enter
	})
}

// rootIdent unwraps an expression to its base identifier: x, x.f, *x,
// x[i].f all resolve to x. Returns nil when the base is not a plain
// identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// isSyncNamed reports whether t (after pointer unwrapping) is the named
// type sync.<name>.
func isSyncNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// lockTypes are the sync types that must never be copied by value.
var lockTypes = []string{"WaitGroup", "Mutex", "RWMutex"}

// containsLockByValue reports the name of the first sync lock type
// embedded by value in t (directly, or through structs and arrays).
// Pointers and interfaces stop the search: sharing through them is the
// correct pattern.
func containsLockByValue(t types.Type) string {
	return lockIn(t, map[types.Type]bool{})
}

func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	for _, name := range lockTypes {
		if isSyncNamed(t, name) {
			if _, isPtr := t.(*types.Pointer); !isPtr {
				return "sync." + name
			}
			return ""
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if found := lockIn(u.Field(i).Type(), seen); found != "" {
				return found
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	if named, ok := t.(*types.Named); ok {
		return lockIn(named.Underlying(), seen)
	}
	return ""
}

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for indirect calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := objectOf(info, fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := objectOf(info, fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// basicIntWidth returns the bit width and signedness of a basic integer
// type. int, uint and uintptr count as 64-bit: the production targets
// are 64-bit and assuming the narrower possibility everywhere would
// drown real findings in 32-bit-only noise.
func basicIntWidth(t types.Type) (width int, signed bool, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic || b.Info()&types.IsInteger == 0 {
		return 0, false, false
	}
	switch b.Kind() {
	case types.Int8:
		return 8, true, true
	case types.Int16:
		return 16, true, true
	case types.Int32:
		return 32, true, true
	case types.Int64, types.Int:
		return 64, true, true
	case types.Uint8:
		return 8, false, true
	case types.Uint16:
		return 16, false, true
	case types.Uint32:
		return 32, false, true
	case types.Uint64, types.Uint, types.Uintptr:
		return 64, false, true
	}
	return 0, false, false
}

// enclosingFuncName returns the name of the innermost named function
// declaration on the stack, or "" inside a function literal only.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
