package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"numarck/internal/analysis"
)

// Obsstage keeps the instrumentation layer's identifier space closed
// and its timers leak-free:
//
//   - every obs.Stage, obs.Counter and obs.Gauge value used outside the
//     obs package must be one of the registry constants the package
//     declares — no local conversions (obs.Stage(7)), no locally
//     declared constants, no raw literals slipping through untyped
//     conversion. Snapshot names stay a closed set the dashboards and
//     bench tooling can rely on;
//   - a Timer obtained from Recorder.Start must be stopped on every
//     return path: a discarded Start, a timer with no Stop, or a return
//     statement between Start and the first Stop all lose the
//     measurement silently (use defer, or stop before returning).
type Obsstage struct{}

// Name implements analysis.Analyzer.
func (Obsstage) Name() string { return "obsstage" }

// Doc implements analysis.Analyzer.
func (Obsstage) Doc() string {
	return "flags obs stage/counter/gauge values from outside the registry and timers not stopped on all return paths"
}

// obsTypeNames are the registry value types.
var obsTypeNames = map[string]bool{"Stage": true, "Counter": true, "Gauge": true}

// isObsRegistryType reports whether t (pointers unwrapped) is one of
// the obs package's registry types, returning its name.
func isObsRegistryType(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "obs" || !obsTypeNames[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// isObsNamed reports whether t is the named obs type with that name
// (Recorder, Timer).
func isObsNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "obs" && obj.Name() == name
}

// isObsPackage reports whether the pass IS the registry package, which
// is exempt from its own rules (it declares the constants and iterates
// the value space in Snapshot).
func isObsPackage(p *analysis.Pass) bool {
	return p.Pkg != nil && p.Pkg.Name() == "obs" && p.Pkg.Scope().Lookup("Stage") != nil
}

// Run implements analysis.Analyzer.
func (Obsstage) Run(p *analysis.Pass) []analysis.Diagnostic {
	if isObsPackage(p) {
		return nil
	}
	var diags []analysis.Diagnostic
	for _, f := range p.Files {
		diags = append(diags, checkRegistryValues(p, f)...)
	}
	for _, fd := range funcsOf(p) {
		if fd.decl.Body != nil {
			diags = append(diags, checkTimers(p, fd)...)
		}
	}
	return diags
}

// checkRegistryValues flags conversions to the registry types, local
// constant/variable declarations of them, and non-registry arguments in
// registry-typed parameter positions.
func checkRegistryValues(p *analysis.Pass, f *ast.File) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[v.Fun]; ok && tv.IsType() {
				if name, ok := isObsRegistryType(tv.Type); ok {
					diags = append(diags, p.Diagf("obsstage", v.Pos(),
						"conversion to obs.%s bypasses the registry; use the named obs constants", name))
				}
				return true
			}
			diags = append(diags, checkRegistryArgs(p, v)...)
		case *ast.ValueSpec:
			if v.Type == nil {
				return true
			}
			if t := p.Info.TypeOf(v.Type); t != nil {
				if name, ok := isObsRegistryType(t); ok {
					diags = append(diags, p.Diagf("obsstage", v.Pos(),
						"local declaration of obs.%s values; stage/counter/gauge names live in the obs registry only", name))
				}
			}
		}
		return true
	})
	return diags
}

// checkRegistryArgs validates arguments bound to registry-typed
// parameters: each must be a registry constant or a value of the type
// already in flight (a parameter being forwarded). Untyped literals —
// which convert silently — and constants declared outside obs are
// flagged. Conversions are the conversion check's job and calls
// returning the type are trusted.
func checkRegistryArgs(p *analysis.Pass, call *ast.CallExpr) []analysis.Diagnostic {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var diags []analysis.Diagnostic
	for i, arg := range call.Args {
		if i >= sig.Params().Len() { // variadic tail: not a registry shape
			break
		}
		name, ok := isObsRegistryType(sig.Params().At(i).Type())
		if !ok {
			continue
		}
		switch a := ast.Unparen(arg).(type) {
		case *ast.CallExpr:
			continue // conversions flagged separately; real calls trusted
		case *ast.Ident, *ast.SelectorExpr:
			var obj types.Object
			if id, isIdent := a.(*ast.Ident); isIdent {
				obj = objectOf(p.Info, id)
			} else {
				obj = objectOf(p.Info, a.(*ast.SelectorExpr).Sel)
			}
			if c, isConst := obj.(*types.Const); isConst {
				if c.Pkg() == nil || c.Pkg().Name() != "obs" {
					diags = append(diags, p.Diagf("obsstage", arg.Pos(),
						"obs.%s constant declared outside the obs registry", name))
				}
				continue
			}
			continue // a variable of the type: already validated at its source
		default:
			diags = append(diags, p.Diagf("obsstage", arg.Pos(),
				"obs.%s argument is not a registry constant; use the named obs constants", name))
		}
	}
	return diags
}

// timerEvent is one lexical event in a timer variable's life.
type timerEvent struct {
	pos      token.Pos
	kind     int // 0 start, 1 stop
	deferred bool
}

// checkTimers flags discarded Starts, never-stopped timers, and return
// statements between a Start and its first Stop.
func checkTimers(p *analysis.Pass, fd funcDecl) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	isStartCall := func(call *ast.CallExpr) bool {
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Name() != "Start" {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil && isObsNamed(sig.Recv().Type(), "Recorder")
	}

	// Discarded Start: the Timer is unrecoverable.
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok && isStartCall(call) {
			diags = append(diags, p.Diagf("obsstage", es.Pos(),
				"result of Recorder.Start is discarded; the timer can never be stopped"))
		}
		return true
	})

	// Per-variable event streams.
	events := map[types.Object][]timerEvent{}
	escaped := map[types.Object]bool{}
	inspectStack(fd.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objectOf(p.Info, id)
		if obj == nil || !isObsNamed(obj.Type(), "Timer") {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		switch timerUse(p, id, stack, isStartCall) {
		case useStart:
			events[obj] = append(events[obj], timerEvent{pos: id.Pos(), kind: 0})
		case useStop:
			deferred := false
			for i := len(stack) - 1; i >= 0; i-- {
				if _, ok := stack[i].(*ast.DeferStmt); ok {
					deferred = true
					break
				}
				if _, ok := stack[i].(*ast.FuncLit); ok {
					break
				}
			}
			events[obj] = append(events[obj], timerEvent{pos: id.Pos(), kind: 1, deferred: deferred})
		case useOther:
			escaped[obj] = true
		}
		return true
	})

	var returns []token.Pos
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})
	sort.Slice(returns, func(i, j int) bool { return returns[i] < returns[j] })

	objs := make([]types.Object, 0, len(events))
	for obj := range events {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		if escaped[obj] {
			continue // handed to someone else: their responsibility
		}
		evs := events[obj]
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		deferredStop := false
		for _, e := range evs {
			if e.kind == 1 && e.deferred {
				deferredStop = true
			}
		}
		if deferredStop {
			continue // defer covers every return path
		}
		// Each Start opens an interval that the next Start closes;
		// within it there must be a Stop, and no return may precede the
		// first Stop.
		for i, e := range evs {
			if e.kind != 0 {
				continue
			}
			intervalEnd := token.Pos(1 << 40)
			for _, later := range evs[i+1:] {
				if later.kind == 0 {
					intervalEnd = later.pos
					break
				}
			}
			var firstStop token.Pos
			for _, later := range evs[i+1:] {
				if later.pos >= intervalEnd {
					break
				}
				if later.kind == 1 {
					firstStop = later.pos
					break
				}
			}
			if firstStop == token.NoPos {
				diags = append(diags, p.Diagf("obsstage", e.pos,
					"obs timer started here is never stopped; its measurement is lost"))
				continue
			}
			for _, rp := range returns {
				if rp > e.pos && rp < firstStop {
					diags = append(diags, p.Diagf("obsstage", rp,
						"return between Recorder.Start (%s) and Timer.Stop loses the timer on this path; stop before returning or use defer",
						p.Position(e.pos)))
				}
			}
		}
	}
	return diags
}

// Timer identifier use classification.
const (
	useStart = iota
	useStop
	useOther
)

// timerUse classifies one appearance of a timer identifier: the LHS of
// an assignment whose RHS is Recorder.Start (a start), the receiver of
// a .Stop call (a stop), or anything else (an escape).
func timerUse(p *analysis.Pass, id *ast.Ident, stack []ast.Node, isStartCall func(*ast.CallExpr) bool) int {
	if len(stack) == 0 {
		return useOther
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ast.Expr(id) {
				if len(parent.Rhs) == 1 {
					if call, ok := ast.Unparen(parent.Rhs[0]).(*ast.CallExpr); ok && isStartCall(call) {
						return useStart
					}
				}
				return useOther // reassigned from something else
			}
		}
		return useOther
	case *ast.SelectorExpr:
		if parent.X == ast.Expr(id) && parent.Sel.Name == "Stop" {
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(parent) {
					return useStop
				}
			}
		}
		return useOther
	}
	return useOther
}
