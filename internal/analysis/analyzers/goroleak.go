package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"numarck/internal/analysis"
)

// Goroleak requires every goroutine launched in internal/chunk — the
// bounded-worker streaming pipeline — to have a visible lifecycle: the
// spawned function must either signal a sync.WaitGroup (wg.Done, the
// worker pattern) or be tied to a done-channel the spawning function
// closes (the feeder pattern). A goroutine with neither outlives the
// pipeline call silently; under the daemon planned on the ROADMAP, a
// leak per request is a resource exhaustion bug, and under -race it is
// where phantom failures come from.
type Goroleak struct{}

// Name implements analysis.Analyzer.
func (Goroleak) Name() string { return "goroleak" }

// Doc implements analysis.Analyzer.
func (Goroleak) Doc() string {
	return "flags go statements in internal/chunk not accounted for by a WaitGroup or done channel"
}

// goroleakScope lists the packages under goroutine-lifecycle
// discipline.
var goroleakScope = []string{
	"numarck/internal/chunk",
}

// Run implements analysis.Analyzer.
func (Goroleak) Run(p *analysis.Pass) []analysis.Diagnostic {
	if !inScope(p.PkgPath, goroleakScope...) {
		return nil
	}
	var diags []analysis.Diagnostic
	for _, fd := range funcsOf(p) {
		if fd.decl.Body == nil {
			continue
		}
		closed := closedChannels(p.Info, fd.decl.Body)
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				diags = append(diags, p.Diagf("goroleak", gs.Pos(),
					"go statement launches %s whose lifecycle is not visible here; wrap it in a func literal that signals a WaitGroup or watches a done channel", callLabel(p.Info, gs.Call)))
				return true
			}
			if signalsWaitGroup(p.Info, lit.Body) || watchesDoneChannel(p.Info, lit.Body, closed) {
				return true
			}
			diags = append(diags, p.Diagf("goroleak", gs.Pos(),
				"goroutine is not accounted for: no WaitGroup.Done and no receive from a channel this function closes"))
			return true
		})
	}
	return diags
}

// signalsWaitGroup reports whether body calls Done on a sync.WaitGroup
// (directly or deferred).
func signalsWaitGroup(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := info.TypeOf(sel.X); t != nil && isSyncNamed(t, "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}

// closedChannels collects the channel objects that fn closes anywhere
// in its body (including inside nested literals — a deferred
// close(jobs) in a feeder goroutine still accounts for a sibling that
// receives from jobs).
func closedChannels(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if arg := rootIdent(call.Args[0]); arg != nil {
			if obj := objectOf(info, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// watchesDoneChannel reports whether body receives from (or ranges
// over) a channel that the spawning function closes — the signal that
// the goroutine terminates when its parent tears the pipeline down.
func watchesDoneChannel(info *types.Info, body *ast.BlockStmt, closed map[types.Object]bool) bool {
	if len(closed) == 0 {
		return false
	}
	received := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := objectOf(info, id)
		return obj != nil && closed[obj]
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && received(v.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && received(v.X) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callLabel names a call target for the report.
func callLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return funcLabel(fn)
	}
	return "a function value"
}
