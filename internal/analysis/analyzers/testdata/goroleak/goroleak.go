// Package goroleak exercises the goroutine-lifecycle analyzer: workers
// signalling a WaitGroup and feeders tied to a channel the spawner
// closes are clean; bare goroutines and opaque named launches are not.
package goroleak

import "sync"

func worker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func feeder() {
	jobs := make(chan int)
	go func() {
		for range jobs {
		}
	}()
	close(jobs)
}

func doneSelect() {
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-stop:
				return
			}
		}
	}()
	close(stop)
	close(done)
}

func leaky() {
	go func() { // want `goroutine is not accounted for: no WaitGroup.Done and no receive from a channel this function closes`
	}()
}

func named() {
	go task() // want `go statement launches goroleak.task whose lifecycle is not visible here`
}

func task() {}
