// Fixture for the errcheck analyzer.
package fixture

import (
	"bytes"
	"os"
	"strings"
	"text/tabwriter"
)

func flushDropped(tw *tabwriter.Writer) {
	tw.Flush() // want `error result of \(\*tabwriter\.Writer\)\.Flush is dropped`
}

func flushChecked(tw *tabwriter.Writer) error {
	return tw.Flush()
}

func deferredClose(f *os.File) {
	defer f.Close() // want `deferred error result of \(\*os\.File\)\.Close is dropped`
}

func goroutineClose(f *os.File) {
	go f.Close() // want `goroutine error result of \(\*os\.File\)\.Close is dropped`
}

func syncDropped(f *os.File) {
	f.Sync() // want `error result of \(\*os\.File\)\.Sync is dropped`
}

// bufferNeverFails: bytes.Buffer and strings.Builder writes are
// documented to always succeed; flagging them is noise.
func bufferNeverFails(buf *bytes.Buffer, sb *strings.Builder) {
	buf.Write([]byte("x"))
	buf.WriteString("y")
	sb.WriteString("z")
}

type sink struct{}

func (sink) Close() error { return nil }

// Report carries no error result; nothing to drop.
func (sink) Report() {}

func customCloser(s sink) {
	s.Close() // want `error result of \(fixture\.sink\)\.Close is dropped`
	s.Report()
}

// handled consumes the error; not flagged.
func handled(s sink) {
	if err := s.Close(); err != nil {
		panic(err)
	}
}
