// Fixture for the waitgroup analyzer.
package fixture

import "sync"

func addInsideGoroutine() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func() {
			wg.Add(1) // want `wg.Add inside the spawned goroutine`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addBeforeGoroutine() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// ownWaitGroup declares the WaitGroup inside the goroutine; its Add is
// local coordination, not a race with an outer Wait.
func ownWaitGroup() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() { inner.Done() }()
		inner.Wait()
	}()
}

func waitBeforeAdd() {
	var wg sync.WaitGroup
	wg.Wait() // want `wg.Wait before wg.Add in the same block`
	wg.Add(1)
	wg.Done()
}

func waitAfterAddLoop() {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go wg.Done()
	}
	wg.Wait()
}

func byValueParam(wg sync.WaitGroup) { // want `parameter copies sync.WaitGroup by value`
	wg.Wait()
}

func byPointerParam(wg *sync.WaitGroup) {
	wg.Wait()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func copyStruct(g guarded) int { // want `parameter copies sync.Mutex by value`
	return g.n
}

func copyAssign() {
	var mu sync.Mutex
	mu2 := mu // want `assignment copies sync.Mutex by value`
	mu2.Lock()
}

func passByValue(f func(sync.RWMutex)) {
	var mu sync.RWMutex
	f(mu) // want `call argument copies sync.RWMutex by value`
}
