// Package atomicfield exercises the mixed atomic/plain access analyzer:
// a field used through sync/atomic anywhere must never be touched
// plainly, while untracked fields and the atomic uses themselves stay
// clean.
package atomicfield

import "sync/atomic"

type counter struct {
	n    int64
	name string
}

func bump(c *counter) {
	atomic.AddInt64(&c.n, 1)
}

func read(c *counter) int64 {
	return c.n // want `plain access of field atomicfield.n, which is accessed atomically at`
}

func write(c *counter) {
	c.n = 0 // want `plain access of field atomicfield.n, which is accessed atomically at`
}

func readAtomic(c *counter) int64 {
	return atomic.LoadInt64(&c.n)
}

func label(c *counter) string {
	return c.name
}

func fresh() *counter {
	return &counter{n: 0, name: "fresh"}
}
