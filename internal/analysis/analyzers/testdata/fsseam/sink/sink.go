// Package sink is a helper the fsseam fixture imports: the mutating os
// call lives here, so the finding in the fixture proves the fact
// crossed a package boundary.
package sink

import "os"

// Drop removes path.
func Drop(path string) error {
	return os.Remove(path)
}
