// Package fsseam exercises the faultfs-seam analyzer: direct mutating
// os calls, transitive reaches through local and cross-package helpers,
// and the clean paths (interface calls, read-only os entry points).
package fsseam

import (
	"os"

	"fixture/sink"
)

// FS mimics the faultfs.FS seam: calls through it resolve to no static
// callee, which is exactly what makes a path clean.
type FS interface {
	Create(name string) (*os.File, error)
	Remove(name string) error
}

func direct() {
	_ = os.Remove("x") // want `direct mutating call os.Remove escapes the faultfs.FS seam`
}

func helper() error {
	return os.Rename("a", "b") // want `direct mutating call os.Rename escapes the faultfs.FS seam`
}

func transitive() {
	_ = helper() // want `call reaches os.Rename outside the faultfs.FS seam \(fsseam.helper -> os.Rename\)`
}

func crossPackage() {
	_ = sink.Drop("x") // want `call reaches os.Remove outside the faultfs.FS seam \(sink.Drop -> os.Remove\)`
}

func throughSeam(fsys FS) {
	_ = fsys.Remove("x")
}

func readOnly() {
	f, err := os.Open("x")
	if err == nil {
		_ = f.Close()
	}
}
