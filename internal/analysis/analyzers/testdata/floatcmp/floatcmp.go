// Fixture for the floatcmp analyzer.
package fixture

import "math"

func compare(a, b float64, f32 float32) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != b { // want `floating-point != comparison`
		return false
	}
	if f32 == 1.5 { // want `floating-point == comparison`
		return true
	}
	if a == 0 { // want `floating-point == comparison`
		return true
	}
	return a < b // ordering comparisons are fine
}

// intCompare has no float operands; nothing is flagged.
func intCompare(a, b int) bool {
	return a == b
}

// constFold compares two untyped float constants; exact by definition.
func constFold() bool {
	const x = 0.1
	const y = 0.2
	return x+y == 0.30000000000000004
}

// ulpEqual is allowlisted by name: exact comparison is its job.
func ulpEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || a == b
}

// almostEqualAbs is allowlisted via the (?i)almostequal pattern.
func almostEqualAbs(a, b float64) bool {
	return a == b || math.Abs(a-b) < 1e-12
}

// mixed flags a comparison where only one operand is float typed.
func mixed(a float64) bool {
	var b float64
	return a == b // want `floating-point == comparison`
}
