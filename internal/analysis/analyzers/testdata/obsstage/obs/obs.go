// Package obs is a miniature of the real instrumentation registry for
// the obsstage fixture: the named value types, a couple of registry
// constants, and the Recorder/Timer surface.
package obs

import "time"

// Stage identifies a pipeline stage.
type Stage uint8

// Counter identifies a monotonic counter.
type Counter uint8

// Gauge identifies a high-watermark gauge.
type Gauge uint8

// Registry constants.
const (
	StageRead Stage = iota
	StageWrite
)

// CntErrors counts failures.
const CntErrors Counter = 0

// Recorder accumulates observations.
type Recorder struct{}

// Observe records one duration for a stage.
func (r *Recorder) Observe(s Stage, d time.Duration) {}

// Add bumps a counter.
func (r *Recorder) Add(c Counter, n uint64) {}

// Start begins a timing.
func (r *Recorder) Start() Timer { return Timer{} }

// Timer is one in-flight timing.
type Timer struct{}

// Stop ends the timing under stage s.
func (t Timer) Stop(s Stage) {}
