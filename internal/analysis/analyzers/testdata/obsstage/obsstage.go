// Package obsstage exercises the instrumentation-discipline analyzer:
// registry values must be the obs constants, and timers must be stopped
// on every return path.
package obsstage

import (
	"errors"
	"time"

	"fixture/obs"
)

var errNop = errors.New("nop")

const localStage obs.Stage = 7 // want `local declaration of obs.Stage values`

func conv(rec *obs.Recorder) {
	rec.Observe(obs.Stage(3), time.Second) // want `conversion to obs.Stage bypasses the registry`
}

func literal(rec *obs.Recorder) {
	rec.Observe(1, time.Second) // want `obs.Stage argument is not a registry constant`
}

func localConst(rec *obs.Recorder) {
	rec.Observe(localStage, time.Second) // want `obs.Stage constant declared outside the obs registry`
}

func registry(rec *obs.Recorder) {
	rec.Observe(obs.StageRead, time.Second)
	rec.Add(obs.CntErrors, 1)
}

func forward(rec *obs.Recorder, s obs.Stage) {
	rec.Observe(s, time.Second)
}

func leak(rec *obs.Recorder, fail bool) error {
	t := rec.Start()
	if fail {
		return errNop // want `return between Recorder.Start .* and Timer.Stop loses the timer on this path`
	}
	t.Stop(obs.StageRead)
	return nil
}

func restart(rec *obs.Recorder) {
	t := rec.Start() // want `obs timer started here is never stopped`
	t = rec.Start()
	t.Stop(obs.StageWrite)
}

func discard(rec *obs.Recorder) {
	rec.Start() // want `result of Recorder.Start is discarded`
}

func deferred(rec *obs.Recorder, fail bool) error {
	t := rec.Start()
	defer t.Stop(obs.StageRead)
	if fail {
		return errNop
	}
	return nil
}

func stopped(rec *obs.Recorder, fail bool) error {
	t := rec.Start()
	t.Stop(obs.StageWrite)
	if fail {
		return errNop
	}
	return nil
}

func escape(rec *obs.Recorder) {
	t := rec.Start()
	keep(t)
}

func keep(t obs.Timer) {}
