// Package errwrap exercises the error-wrapping analyzer: severed %v
// chains (with the %w fix), bare os errors escaping exported functions,
// and the clean wrapped forms.
package errwrap

import (
	"fmt"
	"os"
)

func severed(err error) error {
	return fmt.Errorf("read failed: %v", err) // want `fmt.Errorf renders an error with %v, severing the errors.Is chain; use %w`
}

func severedQuoted(err error) error {
	return fmt.Errorf("open %q: %s", "f", err) // want `fmt.Errorf renders an error with %s, severing the errors.Is chain; use %w`
}

func wrapped(err error) error {
	return fmt.Errorf("read failed: %w", err)
}

// Load is exported, so its errors need op+path context.
func Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err // want `exported Load returns a raw os/faultfs error without op\+path wrapping`
	}
	return f.Close()
}

// LoadWrapped attaches the context the convention demands.
func LoadWrapped(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("errwrap: open %s: %w", path, err)
	}
	return f.Close()
}

// load is unexported: internal plumbing may hand the raw error to an
// exported caller that wraps it.
func load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// Reload re-derives the error before returning, so the bare os source
// no longer dominates.
func Reload(path string) error {
	_, err := os.Open(path)
	if err != nil {
		err = fmt.Errorf("errwrap: reload %s: %w", path, err)
		return err
	}
	return nil
}
