// Fixture for the ctxleak analyzer.
package fixture

import "context"

func leakyUnbuffered() <-chan int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want `goroutine sends on unbuffered channel ch`
	}()
	return ch
}

func bufferedIsFine() <-chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	return ch
}

func selectWithDone(ctx context.Context) <-chan int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
	return ch
}

// ownChannel is created inside the goroutine: its lifetime is the
// goroutine's own business.
func ownChannel() {
	go func() {
		ch := make(chan int)
		go func() { <-ch }()
		ch <- compute()
	}()
}

// zeroCapacity spells the unbuffered capacity explicitly.
func zeroCapacity() <-chan int {
	ch := make(chan int, 0)
	go func() {
		ch <- compute() // want `goroutine sends on unbuffered channel ch`
	}()
	return ch
}

// unknownOrigin receives the channel as a parameter; without seeing the
// make, the analyzer stays silent.
func unknownOrigin(ch chan int) {
	go func() {
		ch <- compute()
	}()
}

func compute() int { return 42 }
