// Fixture for the bindex analyzer.
package fixture

func conversions(x uint64, i int, w uint32) {
	_ = uint32(x) // want `integer conversion uint32\(uint64\) may truncate a 64-bit value to 32 bits`
	_ = int32(i)  // want `integer conversion int32\(int\) may truncate`
	_ = uint8(w)  // want `integer conversion uint8\(uint32\) may truncate`

	// Widening and same-width conversions are always safe.
	_ = uint64(w)
	_ = int64(i)
	_ = uint(x)

	// Constants representable in the target are exact.
	_ = uint32(300)
	_ = byte(255)

	// Pre-masked / reduced operands provably fit.
	_ = uint32(x & 0xffffffff)
	_ = byte(x & 0x7f)
	_ = uint8(x % 100)

	// Right shift leaving <= target-width bits is the serialization
	// idiom.
	_ = byte(x >> 56)
	_ = uint16(x >> 48)
	_ = byte(x >> 32) // want `integer conversion byte\(uint64\) may truncate`

	// Masking the conversion result is deliberate low-bit extraction.
	_ = byte(x) & 0x0f
	_ = 0x3f & uint16(x)
}

// packLoop is the shape of the bitpack encode hot path.
func packLoop(vals []uint64, width int) []byte {
	out := make([]byte, len(vals)*width/8)
	for i, v := range vals {
		off := uint64(i) * uint64(width)
		out[off>>3] |= byte(v << (off & 7)) // want `integer conversion byte\(uint64\) may truncate`
	}
	return out
}

// float conversions are out of scope.
func notInteger(f float64) int {
	return int(f)
}
