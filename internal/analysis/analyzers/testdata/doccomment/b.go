package fixture

// Second file of the fixture: the missing-package-comment finding is
// reported once, on the lexically-first file (a.go), never here.

func AlsoBare() {} // want `exported function AlsoBare should have a doc comment`
