package fixture // want `package fixture should have a package comment`

// Documented is fine: the doc comment is present.
type Documented struct {
	Field int // struct fields are exempt
}

type Bare struct{} // want `exported type Bare should have a doc comment`

type unexported struct{} // lower-case identifiers need no docs

// Iface is documented; its methods are exempt.
type Iface interface {
	Method() error
}

// DocumentedFunc has what it needs.
func DocumentedFunc() {}

func BareFunc() {} // want `exported function BareFunc should have a doc comment`

func internalHelper() {}

// Size is a documented method.
func (Documented) Size() int { return 0 }

func (d *Documented) Reset() {} // want `exported method Documented.Reset should have a doc comment`

// Methods on unexported receivers are not public surface.
func (unexported) Exported() {}

// Grouped constants: one comment covers the block.
const (
	ModeA = 1
	ModeB = 2
)

const LooseConst = 3 // want `exported const LooseConst should have a doc comment`

var (
	Registry = map[string]int{} // want `exported var Registry should have a doc comment`

	// Quota is documented per spec inside an undocumented block.
	Quota = 10

	internalState int
)

//go:generate true
func Generated() {} // want `exported function Generated should have a doc comment`
