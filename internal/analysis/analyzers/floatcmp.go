package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"numarck/internal/analysis"
)

// Floatcmp flags == and != between floating-point operands. NUMARCK's
// error-bound guarantee (paper §II-C, Eq. 3) hinges on disciplined
// float comparisons: a raw equality on a computed ratio is almost
// always a latent bug, because two mathematically equal ratios differ
// after rounding. Exact comparisons that are genuinely intended —
// sentinel zeros, un-computed bounds — must go through the
// internal/fputil helpers (whose bodies this analyzer skips) or carry
// a //lint:ignore floatcmp annotation stating why exactness is safe.
type Floatcmp struct{}

// Name implements analysis.Analyzer.
func (Floatcmp) Name() string { return "floatcmp" }

// Doc implements analysis.Analyzer.
func (Floatcmp) Doc() string {
	return "flags ==/!= on floating-point operands outside allowlisted epsilon/ULP helpers"
}

// allowedFuncs matches helper functions whose whole point is an exact
// or ULP-based float comparison; raw equality inside them is the
// implementation, not a bug.
var allowedFuncs = regexp.MustCompile(`(?i)(ulp|epsilon|almostequal|approxeq|sameFloat)`)

// allowedPkgs are packages whose purpose is float-comparison helpers.
var allowedPkgs = map[string]bool{
	"numarck/internal/fputil": true,
}

// Run implements analysis.Analyzer.
func (Floatcmp) Run(p *analysis.Pass) []analysis.Diagnostic {
	if allowedPkgs[p.PkgPath] {
		return nil
	}
	var diags []analysis.Diagnostic
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(p.Info, be.X) && !isFloatOperand(p.Info, be.Y) {
				return true
			}
			// Compile-time constant folding: comparing two constants is
			// exact by definition.
			if isConst(p.Info, be.X) && isConst(p.Info, be.Y) {
				return true
			}
			if name := enclosingFuncName(stack); allowedFuncs.MatchString(name) {
				return true
			}
			diags = append(diags, p.Diagf("floatcmp", be.OpPos,
				"floating-point %s comparison; use internal/fputil (Eq/IsZero/WithinULP) or annotate why exact equality is safe", be.Op))
			return true
		})
	}
	return diags
}

func isFloatOperand(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
