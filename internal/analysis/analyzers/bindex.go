package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"numarck/internal/analysis"
)

// Bindex flags integer conversions that can silently truncate. NUMARCK
// stores one B-bit bin index per point; the encode paths move indices
// between uint64 bit-stream words, uint32 index arrays and int loop
// counters, and a careless narrowing conversion corrupts bin
// assignments without any error — the reconstruction just applies the
// wrong representative ratio. The analyzer flags T(x) where T is a
// narrower integer type than x's, unless the code proves the value
// fits:
//
//   - the operand is a constant representable in T;
//   - the operand is pre-masked (x & c) or reduced (x % c) by a
//     constant that fits T;
//   - the operand is right-shifted (x >> s) far enough that the
//     remaining bits fit T — the serialization idiom;
//   - the conversion result is immediately masked (T(x) & c), i.e.
//     the truncation is the point.
type Bindex struct{}

// Name implements analysis.Analyzer.
func (Bindex) Name() string { return "bindex" }

// Doc implements analysis.Analyzer.
func (Bindex) Doc() string {
	return "flags narrowing integer conversions that can truncate B-bit bin indices"
}

// Run implements analysis.Analyzer.
func (Bindex) Run(p *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := tv.Type
			arg := ast.Unparen(call.Args[0])
			src := p.Info.TypeOf(arg)
			if src == nil {
				return true
			}
			dstW, _, dstOK := basicIntWidth(dst)
			srcW, _, srcOK := basicIntWidth(src)
			if !dstOK || !srcOK || dstW >= srcW {
				return true
			}
			// Constant operand representable in the target is exact.
			if av, ok := p.Info.Types[arg]; ok && av.Value != nil {
				if representable(av.Value, dst) {
					return true
				}
			}
			if operandBounded(p.Info, arg, dst, srcW, dstW) {
				return true
			}
			if maskedAfter(p.Info, call, stack, dst) {
				return true
			}
			diags = append(diags, p.Diagf("bindex", call.Pos(),
				"integer conversion %s(%s) may truncate a %d-bit value to %d bits; bound or mask the operand first",
				types.TypeString(dst, func(*types.Package) string { return "" }),
				types.TypeString(src, func(*types.Package) string { return "" }),
				srcW, dstW))
			return true
		})
	}
	return diags
}

// representable reports whether constant v fits in integer type dst.
func representable(v constant.Value, dst types.Type) bool {
	b, ok := dst.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	w, signed, ok := basicIntWidth(b)
	if !ok {
		return false
	}
	if signed {
		iv, exact := constant.Int64Val(constant.ToInt(v))
		if !exact {
			return false
		}
		limit := int64(1) << uint(w-1)
		return iv >= -limit && iv < limit
	}
	uv, exact := constant.Uint64Val(constant.ToInt(v))
	if !exact {
		return false
	}
	if w == 64 {
		return true
	}
	return uv < uint64(1)<<uint(w)
}

// operandBounded recognizes operands whose value provably fits the
// destination: x & c, x % c with constant c within dst's range, and
// x >> s with a constant shift leaving at most dstW bits.
func operandBounded(info *types.Info, arg ast.Expr, dst types.Type, srcW, dstW int) bool {
	be, ok := arg.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	constOf := func(e ast.Expr) (constant.Value, bool) {
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return tv.Value, true
		}
		return nil, false
	}
	switch be.Op {
	case token.AND:
		if v, ok := constOf(be.Y); ok && representable(v, dst) {
			return true
		}
		if v, ok := constOf(be.X); ok && representable(v, dst) {
			return true
		}
	case token.REM:
		if v, ok := constOf(be.Y); ok && representable(v, dst) {
			return true
		}
	case token.SHR:
		if v, ok := constOf(be.Y); ok {
			if s, exact := constant.Int64Val(constant.ToInt(v)); exact && srcW-int(s) <= dstW {
				return true
			}
		}
	}
	return false
}

// maskedAfter recognizes T(x) & c (or c & T(x)) with a constant mask
// that fits T: the truncation is deliberate low-bit extraction.
func maskedAfter(info *types.Info, conv *ast.CallExpr, stack []ast.Node, dst types.Type) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	if _, isParen := parent.(*ast.ParenExpr); isParen && len(stack) >= 2 {
		parent = stack[len(stack)-2]
	}
	be, ok := parent.(*ast.BinaryExpr)
	if !ok || be.Op != token.AND {
		return false
	}
	other := be.Y
	if ast.Unparen(be.Y) == conv {
		other = be.X
	} else if ast.Unparen(be.X) != conv {
		return false
	}
	tv, ok := info.Types[other]
	return ok && tv.Value != nil && representable(tv.Value, dst)
}
