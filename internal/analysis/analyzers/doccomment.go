package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"numarck/internal/analysis"
)

// Doccomment enforces the repo's documentation contract: every package
// carries a package comment, and every exported top-level identifier —
// functions, methods on exported receivers, types, constants and
// variables — carries a doc comment. Only presence is checked, not the
// golint "starts with the name" convention: the point is that no part
// of the public surface ships undocumented, not to police phrasing.
// Struct fields and interface methods are exempt (their enclosing
// type's comment is the natural home), as are exported identifiers in
// package main, which are not importable API; main packages still need
// a package comment, since that is the command's usage text.
type Doccomment struct{}

// Name implements analysis.Analyzer.
func (Doccomment) Name() string { return "doccomment" }

// Doc implements analysis.Analyzer.
func (Doccomment) Doc() string {
	return "requires package comments and doc comments on exported top-level identifiers"
}

// Run implements analysis.Analyzer.
func (Doccomment) Run(p *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic

	// One package comment anywhere in the package satisfies the rule;
	// when every file lacks one, report once on the lexically-first
	// file so the finding's position is stable across runs.
	files := append([]*ast.File(nil), p.Files...)
	sort.Slice(files, func(i, j int) bool {
		return p.Position(files[i].Package).Filename < p.Position(files[j].Package).Filename
	})
	hasPkgDoc := false
	for _, f := range files {
		if hasDocText(f.Doc) {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc && len(files) > 0 {
		diags = append(diags, p.Diagf("doccomment", files[0].Package,
			"package %s should have a package comment introducing its purpose", files[0].Name.Name))
	}

	if p.Pkg.Name() == "main" {
		return diags
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || hasDocText(d.Doc) {
					continue
				}
				if d.Recv != nil {
					base := receiverBaseName(d.Recv)
					if base == "" || !token.IsExported(base) {
						continue
					}
					diags = append(diags, p.Diagf("doccomment", d.Name.Pos(),
						"exported method %s.%s should have a doc comment", base, d.Name.Name))
					continue
				}
				diags = append(diags, p.Diagf("doccomment", d.Name.Pos(),
					"exported function %s should have a doc comment", d.Name.Name))
			case *ast.GenDecl:
				// A comment on the grouped declaration documents every
				// spec in the group, matching the const/var-block idiom.
				if d.Tok == token.IMPORT || hasDocText(d.Doc) {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !hasDocText(s.Doc) {
							diags = append(diags, p.Diagf("doccomment", s.Name.Pos(),
								"exported type %s should have a doc comment", s.Name.Name))
						}
					case *ast.ValueSpec:
						if hasDocText(s.Doc) {
							continue
						}
						kind := "const"
						if d.Tok == token.VAR {
							kind = "var"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								diags = append(diags, p.Diagf("doccomment", name.Pos(),
									"exported %s %s should have a doc comment", kind, name.Name))
								break
							}
						}
					}
				}
			}
		}
	}
	return diags
}

// hasDocText reports whether cg contains real prose. Directive
// comments (//go:..., //lint:..., //nolint...) document nothing, so a
// lone suppression above a declaration still counts as missing docs —
// the diagnostic fires and the suppression layer, which requires a
// stated reason, decides whether it stands.
func hasDocText(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text, isLine := strings.CutPrefix(c.Text, "//")
		if !isLine {
			text = strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
		}
		if isLine && (strings.HasPrefix(text, "go:") || strings.HasPrefix(text, "lint:") || strings.HasPrefix(text, "nolint")) {
			continue
		}
		if strings.TrimSpace(text) != "" {
			return true
		}
	}
	return false
}

// receiverBaseName unwraps a method receiver to the name of its base
// type: *T, (T), T[P] and T[P1, P2] all resolve to T.
func receiverBaseName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.ParenExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
