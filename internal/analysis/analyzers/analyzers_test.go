package analyzers_test

import (
	"testing"

	"numarck/internal/analysis"
	"numarck/internal/analysis/analysistest"
	"numarck/internal/analysis/analyzers"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/floatcmp", analyzers.Floatcmp{})
}

func TestWaitgroup(t *testing.T) {
	analysistest.Run(t, "testdata/waitgroup", analyzers.Waitgroup{})
}

func TestCtxleak(t *testing.T) {
	analysistest.Run(t, "testdata/ctxleak", analyzers.Ctxleak{})
}

func TestErrcheck(t *testing.T) {
	analysistest.Run(t, "testdata/errcheck", analyzers.Errcheck{})
}

func TestBindex(t *testing.T) {
	analysistest.Run(t, "testdata/bindex", analyzers.Bindex{})
}

func TestDoccomment(t *testing.T) {
	analysistest.Run(t, "testdata/doccomment", analyzers.Doccomment{})
}

func TestFsseam(t *testing.T) {
	analysistest.Run(t, "testdata/fsseam", analyzers.Fsseam{})
}

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata/errwrap", analyzers.Errwrap{})
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata/atomicfield", analyzers.Atomicfield{})
}

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata/goroleak", analyzers.Goroleak{})
}

func TestObsstage(t *testing.T) {
	analysistest.Run(t, "testdata/obsstage", analyzers.Obsstage{})
}

// TestAll pins the analyzer set: names must be unique, non-empty and
// documented, so //lint:ignore targets stay stable.
func TestAll(t *testing.T) {
	all := analyzers.All()
	if len(all) < 11 {
		t.Fatalf("expected at least 11 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name() == "" || a.Doc() == "" {
			t.Errorf("analyzer %T missing name or doc", a)
		}
		if a.Name() == "lint" {
			t.Errorf("analyzer name %q is reserved for the framework", a.Name())
		}
		if seen[a.Name()] {
			t.Errorf("duplicate analyzer name %q", a.Name())
		}
		seen[a.Name()] = true
	}
	var _ []analysis.Analyzer = all
}
