package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"numarck/internal/analysis"
)

// Atomicfield enforces the all-or-nothing discipline of the sync/atomic
// function API: a struct field that is read or written through
// atomic.LoadInt64(&s.f)-style calls anywhere in the module must never
// be accessed plainly anywhere else — a single plain read next to
// atomic writers is a data race the race detector only catches when the
// schedule cooperates. The seqlock-style chain index on the ROADMAP
// (lock-free readers over a single-writer store) will live or die by
// this invariant.
//
// The fact phase records, module-wide, every field that appears as
// &struct.field in a sync/atomic call; the diagnostic phase then flags
// plain selector accesses of those fields in whichever package they
// occur — including packages compiled before the atomic use was even
// visible, which is why this cannot be a file-local check. Fields of
// the method-based types (atomic.Int64, atomic.Pointer) are safe by
// construction and not tracked. Composite-literal initialization is
// deliberately exempt: initializing before the value is shared is the
// idiomatic pattern.
type Atomicfield struct{}

// Name implements analysis.Analyzer.
func (Atomicfield) Name() string { return "atomicfield" }

// Doc implements analysis.Analyzer.
func (Atomicfield) Doc() string {
	return "flags plain reads/writes of struct fields accessed via sync/atomic elsewhere"
}

// atomicFact marks a field object as atomically accessed; its value is
// the position (string) of one atomic use, for the report.
const atomicFact = "atomicfield.atomic"

// ComputeFacts implements analysis.FactComputer: record every field
// passed by address to a sync/atomic function.
func (Atomicfield) ComputeFacts(p *analysis.Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld := addressedField(p.Info, arg); fld != nil {
					p.Facts.Set(fld, atomicFact, p.Position(call.Pos()).String())
				}
			}
			return true
		})
	}
}

// Run implements analysis.Analyzer: flag plain selector accesses of
// atomically-used fields.
func (Atomicfield) Run(p *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(p.Info, sel)
			if fld == nil {
				return true
			}
			where, ok := p.Facts.Get(fld, atomicFact)
			if !ok {
				return true
			}
			if inAtomicContext(p.Info, stack) {
				return true
			}
			diags = append(diags, p.Diagf("atomicfield", sel.Sel.Pos(),
				"plain access of field %s.%s, which is accessed atomically at %s; use sync/atomic on every access",
				fieldOwner(fld), fld.Name(), where))
			return true
		})
	}
	return diags
}

// isAtomicCall reports whether call targets a sync/atomic package-level
// function (LoadInt64, StoreUint32, AddInt64, SwapPointer,
// CompareAndSwapInt64, ...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Package-level functions only: the method API's receivers enforce
	// the discipline by themselves.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField unwraps &x.f (with any parens) to the field object f,
// or nil.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOf(info, sel)
}

// fieldOf resolves a selector to the struct field it names, or nil for
// methods, package selectors and qualified identifiers.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}

// inAtomicContext reports whether the node at the top of stack sits
// inside &... passed directly to a sync/atomic call.
func inAtomicContext(info *types.Info, stack []ast.Node) bool {
	// Expected shape (innermost last): ... CallExpr, UnaryExpr(&),
	// [ParenExpr...], SelectorExpr is the visited node.
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return false
			}
			continue
		case *ast.CallExpr:
			return isAtomicCall(info, v)
		default:
			return false
		}
	}
	return false
}

// fieldOwner renders the declaring struct's type name for the report,
// falling back to the package name.
func fieldOwner(fld *types.Var) string {
	if fld.Pkg() != nil {
		return fld.Pkg().Name()
	}
	return "?"
}
