package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"

	"numarck/internal/analysis"
)

// Ctxleak flags goroutines that send on an unbuffered channel created
// outside them with no select around the send. If the receiver returns
// early — an error on another rank, a cancelled context — the sender
// blocks forever and the goroutine leaks. This is the failure mode of
// the internal/dist fabric pattern: rank goroutines communicating
// results back to a coordinator that may already have bailed out. The
// fix is a buffered channel sized to the sender count, or a
// select { case ch <- v: case <-ctx.Done(): }.
type Ctxleak struct{}

// Name implements analysis.Analyzer.
func (Ctxleak) Name() string { return "ctxleak" }

// Doc implements analysis.Analyzer.
func (Ctxleak) Doc() string {
	return "flags goroutine sends on unbuffered outer channels with no ctx/done select"
}

// Run implements analysis.Analyzer.
func (Ctxleak) Run(p *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, f := range p.Files {
		unbuffered := unbufferedChannels(p.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			inspectStack(lit.Body, func(m ast.Node, stack []ast.Node) bool {
				send, ok := m.(*ast.SendStmt)
				if !ok {
					return true
				}
				// A send under any select has an escape hatch (or at
				// least a deliberate blocking decision); skip it.
				for _, anc := range stack {
					if _, inSelect := anc.(*ast.SelectStmt); inSelect {
						return true
					}
				}
				id := rootIdent(send.Chan)
				if id == nil {
					return true
				}
				obj := objectOf(p.Info, id)
				if obj == nil || declaredWithin(obj, lit) {
					return true
				}
				if !unbuffered[obj] {
					return true // buffered or unknown origin: can't prove a leak
				}
				diags = append(diags, p.Diagf("ctxleak", send.Pos(),
					"goroutine sends on unbuffered channel %s with no ctx/done select; sender leaks if the receiver exits early", obj.Name()))
				return true
			})
			return true
		})
	}
	return diags
}

// unbufferedChannels maps channel objects in f to whether their
// visible make(chan T) has no capacity (or constant capacity 0).
// Channels whose creation is not visible in this file are absent.
func unbufferedChannels(info *types.Info, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := objectOf(info, id)
		if obj == nil {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "make" {
			return
		}
		if t := info.TypeOf(call); t == nil {
			return
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		if len(call.Args) < 2 {
			out[obj] = true
			return
		}
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
			if capVal, exact := constant.Int64Val(tv.Value); exact && capVal == 0 {
				out[obj] = true
				return
			}
		}
		out[obj] = false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					record(v.Lhs[i], v.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) == len(v.Values) {
				for i := range v.Names {
					record(v.Names[i], v.Values[i])
				}
			}
		}
		return true
	})
	return out
}
