package analyzers

import (
	"fmt"
	"go/types"
	"strings"

	"numarck/internal/analysis"
)

// Fsseam enforces the faultfs filesystem seam on the durability
// packages: no code path in internal/checkpoint or internal/rawio may
// reach a mutating os-package call — os.Create, os.Rename, os.Remove,
// os.WriteFile, (*os.File).Write, ... — other than through the
// faultfs.FS interface. PR 4's crash matrix proves durability by
// killing the store at every mutating operation of the injectable seam;
// a direct os call is invisible to the injector and therefore a hole in
// the proof. The scope covers the whole store layer cake: checkpoint
// commits, the LOCK writer-lock acquisition/takeover/release path, and
// CHAININDEX publication all mutate the store directory and must stay
// killable; the lock-free read view must stay on the seam too, because
// its read-only claim is proven by substituting an FS whose mutating
// operations fail.
//
// The analyzer is interprocedural: its fact phase marks every function
// in the module that directly performs a mutating os call, then
// propagates the mark over the engine's static call graph (helpers
// calling helpers, closures attributed to their enclosing function)
// until fixpoint. The diagnostic phase flags every call site in the
// scoped packages whose static callee carries the mark, reporting the
// witness chain down to the os call. Calls through the faultfs.FS
// interface resolve to no static callee, so routing through the seam is
// exactly what makes a path clean.
type Fsseam struct{}

// Name implements analysis.Analyzer.
func (Fsseam) Name() string { return "fsseam" }

// Doc implements analysis.Analyzer.
func (Fsseam) Doc() string {
	return "flags checkpoint/rawio paths that reach mutating os calls outside the faultfs.FS seam"
}

// fsseamFact is the fact name marking a function that transitively
// reaches a mutating os call.
const fsseamFact = "fsseam.reachesOSMutation"

// osReach is the fact value: how the marked function reaches the os
// mutation — directly (Target set, Via nil) or through its callee Via.
type osReach struct {
	// Target is the fully qualified mutating call, e.g. "os.Create".
	Target string
	// Via is the next hop toward Target, nil for a direct call.
	Via *types.Func
}

// osMutating is the set of mutating identifiers in package os:
// package-level functions and *os.File methods that create, modify or
// make durable on-disk state. Read-only entry points (os.Open,
// os.ReadFile, os.Stat, os.ReadDir) are deliberately absent.
var osMutating = map[string]bool{
	"Create": true, "OpenFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "WriteFile": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "CreateTemp": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
	// *os.File methods:
	"Write": true, "WriteString": true, "WriteAt": true, "Sync": true,
}

// osMutatingTarget reports whether fn is a mutating os-package call and
// returns its qualified name.
func osMutatingTarget(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	if !osMutating[fn.Name()] {
		return "", false
	}
	return "os." + fn.Name(), true
}

// ComputeFacts implements analysis.FactComputer: it marks the pass's
// functions that reach a mutating os call, iterating to fixpoint so
// intra-package call chains (and recursion) converge. Imported
// packages' marks already exist — the engine visits dependencies first.
func (Fsseam) ComputeFacts(p *analysis.Pass) {
	if p.Pkg != nil && p.Pkg.Path() == "os" {
		return
	}
	fns := funcsOf(p)
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			if p.Facts.Has(fd.fn, fsseamFact) {
				continue
			}
			for _, site := range p.Graph.CallsFrom(fd.fn) {
				if target, ok := osMutatingTarget(site.Callee); ok {
					p.Facts.Set(fd.fn, fsseamFact, osReach{Target: target})
					changed = true
					break
				}
				if reach, ok := p.Facts.Get(site.Callee, fsseamFact); ok {
					r := reach.(osReach)
					p.Facts.Set(fd.fn, fsseamFact, osReach{Target: r.Target, Via: site.Callee})
					changed = true
					break
				}
			}
		}
	}
}

// seamScope lists the packages the seam invariant covers.
var seamScope = []string{
	"numarck/internal/checkpoint",
	"numarck/internal/rawio",
}

// Run implements analysis.Analyzer: within the scoped packages it flags
// every call site whose static callee is or reaches a mutating os call.
func (Fsseam) Run(p *analysis.Pass) []analysis.Diagnostic {
	if !inScope(p.PkgPath, seamScope...) {
		return nil
	}
	var diags []analysis.Diagnostic
	for _, fd := range funcsOf(p) {
		for _, site := range p.Graph.CallsFrom(fd.fn) {
			if target, ok := osMutatingTarget(site.Callee); ok {
				diags = append(diags, p.Diagf("fsseam", site.Pos,
					"direct mutating call %s escapes the faultfs.FS seam; route it through an injected faultfs.FS", target))
				continue
			}
			if reach, ok := p.Facts.Get(site.Callee, fsseamFact); ok {
				r := reach.(osReach)
				diags = append(diags, p.Diagf("fsseam", site.Pos,
					"call reaches %s outside the faultfs.FS seam (%s); route it through an injected faultfs.FS",
					r.Target, renderChain(p, site.Callee, r)))
			}
		}
	}
	return diags
}

// renderChain renders the witness path from the called function down to
// the os call, e.g. "rawio.WriteFile -> rawio.syncDir -> os.Open".
func renderChain(p *analysis.Pass, first *types.Func, reach osReach) string {
	var hops []string
	fn, r := first, reach
	for depth := 0; depth < 16; depth++ {
		hops = append(hops, funcLabel(fn))
		if r.Via == nil {
			break
		}
		fn = r.Via
		v, ok := p.Facts.Get(fn, fsseamFact)
		if !ok {
			break
		}
		r = v.(osReach)
	}
	hops = append(hops, reach.Target)
	return strings.Join(hops, " -> ")
}

// funcLabel renders fn as pkg.Func or pkg.(Recv).Method.
func funcLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		qual := func(p *types.Package) string { return p.Name() }
		return fmt.Sprintf("%s(%s).%s", pkg, types.TypeString(sig.Recv().Type(), qual), fn.Name())
	}
	return pkg + fn.Name()
}
