package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"numarck/internal/analysis"
)

// Errcheck flags dropped error returns on NUMARCK's persistence paths.
// It is deliberately narrower than a general errcheck: a silently
// failed checkpoint write invalidates the restart guarantee entirely
// (a delta chain with a hole cannot be replayed), so the analyzer
// targets exactly the calls where a dropped error corrupts durability:
//
//   - any function or method of internal/checkpoint or
//     internal/lossless packages;
//   - Write/WriteString/Close/Flush/Sync methods whose last result is
//     an error — the io.Writer family — except the never-failing
//     in-memory writers bytes.Buffer and strings.Builder.
type Errcheck struct{}

// Name implements analysis.Analyzer.
func (Errcheck) Name() string { return "errcheck" }

// Doc implements analysis.Analyzer.
func (Errcheck) Doc() string {
	return "flags dropped errors from checkpoint/lossless calls and io writer methods"
}

// errcheckPkgPrefixes are the module packages whose every error return
// must be consumed.
var errcheckPkgPrefixes = []string{
	"numarck/internal/checkpoint",
	"numarck/internal/lossless",
}

// writerMethods are the io.Writer-family method names checked on any
// receiver.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
}

// neverFails matches receiver types documented to always return nil
// errors; flagging them would be pure noise.
func neverFails(recv types.Type) bool {
	s := recv.String()
	return strings.Contains(s, "bytes.Buffer") || strings.Contains(s, "strings.Builder")
}

// Run implements analysis.Analyzer.
func (Errcheck) Run(p *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	check := func(call *ast.CallExpr, via string) {
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !lastResultIsError(sig) {
			return
		}
		if !errcheckTarget(fn, sig) {
			return
		}
		diags = append(diags, p.Diagf("errcheck", call.Pos(),
			"%serror result of %s is dropped", via, calleeLabel(fn)))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				if call, ok := v.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(v.Call, "deferred ")
			case *ast.GoStmt:
				check(v.Call, "goroutine ")
			}
			return true
		})
	}
	return diags
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// errcheckTarget decides whether fn's dropped error matters under this
// analyzer's scope.
func errcheckTarget(fn *types.Func, sig *types.Signature) bool {
	if pkg := fn.Pkg(); pkg != nil {
		for _, prefix := range errcheckPkgPrefixes {
			if pkg.Path() == prefix || strings.HasPrefix(pkg.Path(), prefix+"/") {
				return true
			}
		}
	}
	if recv := sig.Recv(); recv != nil && writerMethods[fn.Name()] {
		return !neverFails(recv.Type())
	}
	return false
}

func calleeLabel(fn *types.Func) string {
	qual := func(p *types.Package) string { return p.Name() }
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), qual) + ")." + fn.Name()
	}
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + fn.Name()
	}
	return fn.Name()
}
