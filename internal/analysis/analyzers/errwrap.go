package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"numarck/internal/analysis"
)

// Errwrap enforces the store packages' error-wrapping convention: every
// error that crosses the exported surface of internal/checkpoint,
// internal/chunk or internal/rawio must stay inspectable with errors.Is
// and carry op+path context (the pathErr style). Two violations are
// flagged:
//
//  1. fmt.Errorf rendering an error operand with a non-%w verb (%v, %s,
//     %q, ...): the chain is severed, errors.Is(err, ErrCorrupt) stops
//     working. This carries a mechanical fix — rewrite the verb to %w.
//  2. an exported function returning an error that came straight from
//     an os or faultfs call with no wrapping at all: the caller sees
//     "no such file" with no hint of which operation or path failed.
type Errwrap struct{}

// Name implements analysis.Analyzer.
func (Errwrap) Name() string { return "errwrap" }

// Doc implements analysis.Analyzer.
func (Errwrap) Doc() string {
	return "flags severed (%v on error) or missing op+path error wrapping in checkpoint/chunk/rawio"
}

// errwrapScope lists the packages whose error discipline is enforced.
var errwrapScope = []string{
	"numarck/internal/checkpoint",
	"numarck/internal/chunk",
	"numarck/internal/rawio",
}

// Run implements analysis.Analyzer.
func (Errwrap) Run(p *analysis.Pass) []analysis.Diagnostic {
	if !inScope(p.PkgPath, errwrapScope...) {
		return nil
	}
	var diags []analysis.Diagnostic
	for _, fd := range funcsOf(p) {
		if fd.decl.Body == nil {
			continue
		}
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				diags = append(diags, checkErrorfVerbs(p, call)...)
			}
			return true
		})
		if fd.decl.Name.IsExported() {
			diags = append(diags, checkBareReturns(p, fd)...)
		}
	}
	return diags
}

// checkErrorfVerbs flags error operands of fmt.Errorf formatted with a
// verb other than %w and suggests the rewrite.
func checkErrorfVerbs(p *analysis.Pass, call *ast.CallExpr) []analysis.Diagnostic {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	verbs := formatVerbs(lit.Value)
	var diags []analysis.Diagnostic
	for i, v := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) || v.letter == 'w' {
			continue
		}
		argType := p.Info.TypeOf(call.Args[argIdx])
		if argType == nil || !isErrorType(argType) {
			continue
		}
		start := lit.ValuePos + token.Pos(v.start)
		end := lit.ValuePos + token.Pos(v.end)
		d := p.Diagf("errwrap", call.Args[argIdx].Pos(),
			"fmt.Errorf renders an error with %%%c, severing the errors.Is chain; use %%w", v.letter)
		d.Fixes = []analysis.SuggestedFix{p.FixAt(start, end, "replace the verb with %w", "%w")}
		diags = append(diags, d)
	}
	return diags
}

// verb is one % directive found in a format string literal: the byte
// range [start, end) within the literal's source text (quotes included
// in the coordinate system) and the final verb letter.
type verb struct {
	start, end int
	letter     byte
}

// formatVerbs scans a string literal's source text for format verbs.
// Scanning the quoted source rather than the unquoted value keeps byte
// offsets aligned with token positions; '%' never needs escaping in Go
// string literals, so the verbs read the same either way. %% is
// skipped. Indexed verbs (%[1]d) and * widths consume no extra slots
// here — close enough for the error-operand check, which re-validates
// the matched argument's type before reporting.
func formatVerbs(src string) []verb {
	var out []verb
	for i := 0; i < len(src); i++ {
		if src[i] != '%' {
			continue
		}
		j := i + 1
		if j < len(src) && src[j] == '%' {
			i = j
			continue
		}
		for j < len(src) && strings.ContainsRune("+-# 0123456789.*[]", rune(src[j])) {
			j++
		}
		if j < len(src) && isVerbLetter(src[j]) {
			out = append(out, verb{start: i, end: j + 1, letter: src[j]})
			i = j
		}
	}
	return out
}

func isVerbLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// isErrorType reports whether t is the error interface (or a named type
// implementing exactly it — errors through interfaces still sever).
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type()) ||
		types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// checkBareReturns flags returns of an error identifier whose every
// in-function source is a raw os or faultfs call — the error leaves the
// exported function with no op or path attached.
func checkBareReturns(p *analysis.Pass, fd funcDecl) []analysis.Diagnostic {
	// Pass 1: for every error-typed identifier object assigned in the
	// function, classify its sources. An object qualifies only if every
	// assignment comes from a bare os/faultfs call.
	type sourceInfo struct {
		bareFS bool // at least one assignment from a raw os/faultfs call
		other  bool // any assignment from anything else
	}
	sources := map[types.Object]*sourceInfo{}
	note := func(obj types.Object, rhs ast.Expr) {
		if obj == nil || !isErrorType(obj.Type()) {
			return
		}
		si := sources[obj]
		if si == nil {
			si = &sourceInfo{}
			sources[obj] = si
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isFSCall(p.Info, call) {
			si.bareFS = true
			return
		}
		si.other = true
	}
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			note(objectOf(p.Info, id), as.Rhs[0])
		}
		return true
	})

	// Pass 2: flag returns of qualifying identifiers.
	var diags []analysis.Diagnostic
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok {
				continue
			}
			si := sources[objectOf(p.Info, id)]
			if si != nil && si.bareFS && !si.other {
				diags = append(diags, p.Diagf("errwrap", res.Pos(),
					"exported %s returns a raw os/faultfs error without op+path wrapping; wrap it (e.g. pathErr or fmt.Errorf with %%w)", fd.fn.Name()))
			}
		}
		return true
	})
	return diags
}

// isFSCall reports whether call statically targets the os package or a
// faultfs function/method — the error producers the wrapping convention
// covers.
func isFSCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "os" || path == "numarck/internal/faultfs" ||
		strings.HasSuffix(path, "/faultfs")
}
