// Package analysistest runs an Analyzer over a fixture package and
// compares its findings against `// want "regexp"` expectations in the
// fixture source, golden-file style. Each analyzer in
// internal/analysis/analyzers has a fixture under its testdata
// directory, so detection-logic regressions fail the analyzer's own
// tests.
//
// A fixture directory may contain subdirectories; each is type-checked
// first as a helper package importable from the fixture as
// "fixture/<subdir>" — how fixtures model cross-package scenarios such
// as a registry package whose constants the analyzer requires, or a
// callee package a fact must propagate out of. If the analyzer
// implements analysis.FactComputer, its fact phase runs over the helper
// packages and then the fixture, mirroring the engine's
// dependency-order walk, before diagnostics are collected from the
// fixture package alone.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"numarck/internal/analysis"
)

// want is one expectation: a regexp that must match a finding's
// message at a specific file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE extracts the quoted regexps of a want comment. Both
// double-quoted and backquoted forms are accepted; backquotes avoid
// double-escaping in patterns full of parentheses.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the fixture package in dir (and any helper sub-packages),
// runs a over it, and reports any mismatch between findings and
// // want expectations as test errors: a finding with no matching want,
// or a want no finding matched.
func Run(t *testing.T, dir string, a analysis.Analyzer) {
	t.Helper()
	passes, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	main := passes[len(passes)-1]
	wants, err := collectWants(main.Fset, main.Files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	if fc, ok := a.(analysis.FactComputer); ok {
		for _, p := range passes {
			fc.ComputeFacts(p)
		}
	}
	diags := a.Run(main)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	for _, d := range diags {
		if d.Analyzer != a.Name() {
			t.Errorf("diagnostic reported under name %q, analyzer is %q", d.Analyzer, a.Name())
		}
		matched := false
		for _, w := range wants {
			if w.hit || filepath.Base(w.file) != filepath.Base(d.File) || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.File), d.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no finding matched want %q at %s:%d", w.re, filepath.Base(w.file), w.line)
		}
	}
}

// fixtureImporter resolves "fixture/..." imports from the helper
// packages checked so far and everything else (the standard library)
// through the source importer.
type fixtureImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.checked[path]; ok {
		return p, nil
	}
	return fi.fallback.Import(path)
}

// loadFixture parses and type-checks the package in dir plus any helper
// packages in its immediate subdirectories. The returned passes share
// one file set, fact table and call graph; helper packages come first,
// the fixture package last. The standard library resolves through the
// source importer, so fixtures may import sync, io, context, etc.
func loadFixture(dir string) ([]*analysis.Pass, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		checked:  map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type loaded struct {
		path  string
		files []*ast.File
		pkg   *types.Package
		info  *types.Info
	}
	var pkgs []loaded

	check := func(pkgDir, pkgPath string) error {
		sub, err := os.ReadDir(pkgDir)
		if err != nil {
			return err
		}
		var files []*ast.File
		for _, e := range sub {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return fmt.Errorf("no .go files in %s", pkgDir)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkgPath, fset, files, info)
		if err != nil {
			return fmt.Errorf("type-check fixture %s: %w", pkgDir, err)
		}
		imp.checked[pkgPath] = tpkg
		pkgs = append(pkgs, loaded{path: pkgPath, files: files, pkg: tpkg, info: info})
		return nil
	}

	for _, e := range entries {
		if e.IsDir() {
			if err := check(filepath.Join(dir, e.Name()), "fixture/"+e.Name()); err != nil {
				return nil, err
			}
		}
	}
	if err := check(dir, "fixture/"+filepath.Base(dir)); err != nil {
		return nil, err
	}

	var graphPkgs []*analysis.Package
	for _, l := range pkgs {
		graphPkgs = append(graphPkgs, &analysis.Package{
			Path:  l.path,
			Files: l.files,
			Types: l.pkg,
			Info:  l.info,
		})
	}
	facts := analysis.NewFacts()
	graph := analysis.BuildCallGraph(fset, graphPkgs)

	passes := make([]*analysis.Pass, 0, len(pkgs))
	for _, l := range pkgs {
		passes = append(passes, &analysis.Pass{
			Fset:    fset,
			Pkg:     l.pkg,
			PkgPath: l.path,
			Files:   l.files,
			Info:    l.info,
			Facts:   facts,
			Graph:   graph,
		})
	}
	return passes, nil
}

// collectWants parses // want comments out of the fixture files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
