// Package analysistest runs an Analyzer over a fixture package and
// compares its findings against `// want "regexp"` expectations in the
// fixture source, golden-file style. Each analyzer in
// internal/analysis/analyzers has a fixture under its testdata
// directory, so detection-logic regressions fail the analyzer's own
// tests.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"numarck/internal/analysis"
)

// want is one expectation: a regexp that must match a finding's
// message at a specific file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE extracts the quoted regexps of a want comment. Both
// double-quoted and backquoted forms are accepted; backquotes avoid
// double-escaping in patterns full of parentheses.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the fixture package in dir, runs a over it, and reports
// any mismatch between findings and // want expectations as test
// errors: a finding with no matching want, or a want no finding
// matched.
func Run(t *testing.T, dir string, a analysis.Analyzer) {
	t.Helper()
	pass, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants, err := collectWants(pass.Fset, pass.Files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	diags := a.Run(pass)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	for _, d := range diags {
		if d.Analyzer != a.Name() {
			t.Errorf("diagnostic reported under name %q, analyzer is %q", d.Analyzer, a.Name())
		}
		matched := false
		for _, w := range wants {
			if w.hit || filepath.Base(w.file) != filepath.Base(d.File) || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.File), d.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no finding matched want %q at %s:%d", w.re, filepath.Base(w.file), w.line)
		}
	}
}

// loadFixture parses and type-checks the single package in dir. The
// standard library resolves through the source importer, so fixtures
// may import sync, io, context, etc.
func loadFixture(dir string) (*analysis.Pass, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkgPath := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check fixture %s: %w", dir, err)
	}
	return &analysis.Pass{
		Fset:    fset,
		Pkg:     tpkg,
		PkgPath: pkgPath,
		Files:   files,
		Info:    info,
	}, nil
}

// collectWants parses // want comments out of the fixture files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
