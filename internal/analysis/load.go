package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker's fact tables.
	Info *types.Info
}

// Module is the result of loading a module tree.
type Module struct {
	// RootDir is the directory holding go.mod.
	RootDir string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the shared file set of every parsed file.
	Fset *token.FileSet
	// Packages are the module's packages in dependency order.
	Packages []*Package
}

// FindModuleRoot walks upward from dir to the directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// skipDir reports whether a directory is excluded from loading:
// VCS metadata, vendored code, testdata fixtures (which contain
// intentional defects) and hidden or underscore-prefixed trees.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load parses and type-checks every package under the module containing
// dir. Test files (_test.go) are not loaded; testdata and vendor trees
// are skipped. Packages are returned in dependency order, so analyzers
// may rely on imports of earlier entries being fully checked.
func Load(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path  string
		dir   string
		files []*ast.File
	}
	raw := map[string]*rawPkg{}

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		pkgDir := filepath.Dir(path)
		rel, err := filepath.Rel(root, pkgDir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := raw[importPath]
		if rp == nil {
			rp = &rawPkg{path: importPath, dir: pkgDir}
			raw[importPath] = rp
		}
		rp.files = append(rp.files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topological order over module-internal imports so every package
	// type-checks after its dependencies.
	order, err := topoSort(raw, func(rp *rawPkg) []string {
		var deps []string
		for _, f := range rp.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					deps = append(deps, p)
				}
			}
		}
		return deps
	})
	if err != nil {
		return nil, err
	}

	mod := &Module{RootDir: root, Path: modPath, Fset: fset}
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		checked:  checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, importPath := range order {
		rp := raw[importPath]
		// Deterministic file order: parse order follows WalkDir, which
		// is already lexical, but sort defensively by filename.
		sort.Slice(rp.files, func(i, j int) bool {
			return fset.Position(rp.files[i].Pos()).Filename < fset.Position(rp.files[j].Pos()).Filename
		})
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(importPath, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
		}
		checked[importPath] = tpkg
		mod.Packages = append(mod.Packages, &Package{
			Path:  importPath,
			Dir:   rp.dir,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return mod, nil
}

// topoSort orders raw packages so dependencies precede dependents.
// Ties break lexically for deterministic output.
func topoSort[T any](pkgs map[string]*T, deps func(*T) []string) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []string
	var visit func(string, []string) error
	visit = func(p string, stack []string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(stack, p), " -> "))
		}
		state[p] = visiting
		d := deps(pkgs[p])
		sort.Strings(d)
		for _, dep := range d {
			if _, ok := pkgs[dep]; !ok {
				continue // outside the module (or missing — the checker will say)
			}
			if err := visit(dep, append(stack, p)); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages
// type-checked so far and everything else (the standard library)
// through the source importer, which type-checks from source and so
// needs no pre-compiled export data.
type moduleImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// Match reports whether pkg (an import path relative to the module,
// e.g. "internal/core", or the full path) is selected by pattern.
// Patterns follow the go tool's shape: "./..." selects everything,
// "./x/..." a subtree, "./x" or "x" one package, "." the root package.
func (mod *Module) Match(pkg *Package, pattern string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, mod.Path), "/")
	pattern = strings.TrimPrefix(pattern, "./")
	switch {
	case pattern == "..." || pattern == "":
		return true
	case strings.HasSuffix(pattern, "/..."):
		prefix := strings.TrimSuffix(pattern, "/...")
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	case pattern == ".":
		return rel == ""
	default:
		return rel == pattern
	}
}
