// Package analysis is a stdlib-only static-analysis framework for this
// module, in the spirit of golang.org/x/tools/go/analysis but built
// exclusively on go/parser, go/ast, go/types and go/token so the repo
// keeps its zero-dependency constraint.
//
// The framework loads and type-checks every package in the module
// (Load) and runs a set of Analyzers over them in two phases. The fact
// phase visits every package in dependency order and lets analyzers
// implementing FactComputer export facts about functions, types and
// fields into a module-wide table (Facts), with a static call graph
// (CallGraph) built from the type-checker's resolution maps — the
// substrate for interprocedural reasoning such as "this function
// transitively reaches a mutating os call". The diagnostic phase then
// runs every analyzer over the selected packages in parallel, honours
// `//lint:ignore <analyzer> <reason>` suppressions (and reports unused
// ones), and renders position-accurate diagnostics as text, JSON or
// SARIF 2.1. Diagnostics may carry mechanical SuggestedFixes, applied
// in place by ApplyFixes (the driver's -fix mode). cmd/numarcklint is
// the command-line driver; the repo-specific analyzers live in the
// analyzers subpackage.
//
// NUMARCK's correctness contract — exact error-bound enforcement over
// floating-point change ratios (§II-C, Eq. 3) and race-free
// goroutine-parallel k-means and distributed encode paths — is fragile
// in ways generic tooling misses; the analyzers here encode those
// repo-specific invariants.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static-analysis pass.
type Analyzer interface {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore suppressions. Lower-case, no spaces.
	Name() string
	// Doc is a one-line description of what the analyzer reports.
	Doc() string
	// Run inspects one type-checked package and returns its findings.
	// Implementations must be safe for concurrent use: Run is invoked
	// from multiple goroutines on different passes.
	Run(p *Pass) []Diagnostic
}

// Pass carries one type-checked package to an Analyzer.
type Pass struct {
	// Fset maps token.Pos to file positions for every file of the load.
	Fset *token.FileSet
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the package's import path within the module.
	PkgPath string
	// Files are the package's parsed files, with comments.
	Files []*ast.File
	// Info holds the type-checker's expression, definition and use
	// maps for the package.
	Info *types.Info
	// Facts is the module-wide fact table. During ComputeFacts it is
	// writable and imported packages' facts are complete; during Run it
	// is read-only and the whole module's facts are complete.
	Facts *Facts
	// Graph is the module-wide static call graph, immutable for the
	// whole run.
	Graph *CallGraph
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Pos is the finding's resolved source position.
	Pos token.Position `json:"-"`
	// Message describes the finding.
	Message string `json:"message"`

	// File, Line and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`

	// Fixes are mechanical rewrites that resolve the finding, applied
	// by ApplyFixes under the driver's -fix flag. Empty for findings
	// that need human judgement.
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// SuggestedFix is one mechanical text edit: replace the byte range
// [Start, End) of File with NewText. Offsets are byte offsets within
// the file's current contents, as produced by token.Position.Offset.
type SuggestedFix struct {
	// Message says what the fix does, e.g. "replace %v with %w".
	Message string `json:"fix_message"`
	// File is the path of the file to edit.
	File string `json:"fix_file"`
	// Start and End delimit the replaced byte range.
	Start int `json:"fix_start"`
	End   int `json:"fix_end"`
	// NewText replaces the range.
	NewText string `json:"fix_new_text"`
}

// FixAt builds a SuggestedFix replacing the source range [pos, end)
// with newText, resolving offsets through the pass's file set.
func (p *Pass) FixAt(pos, end token.Pos, message, newText string) SuggestedFix {
	start := p.Fset.Position(pos)
	stop := p.Fset.Position(end)
	return SuggestedFix{
		Message: message,
		File:    start.Filename,
		Start:   start.Offset,
		End:     stop.Offset,
		NewText: newText,
	}
}

// Diagf constructs a Diagnostic at pos, resolving it through the pass.
func (p *Pass) Diagf(name string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Analyzer: name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	}
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}
