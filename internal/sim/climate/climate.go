// Package climate generates synthetic CMIP5-like climate fields that
// stand in for the archive data the NUMARCK paper evaluates on (§III-A:
// six variables on a 2.5°×2° grid, five daily and one monthly).
//
// Each variable combines (1) a fixed spatial climatology, (2) a
// seasonal cycle, (3) "weather": a sum of spatially correlated spectral
// modes whose phases advance every iteration, and (4) per-point
// multiplicative jitter from a counter-based hash, so an iteration is a
// pure function of (variable, seed, iteration index). The per-variable
// parameters are tuned so the change-ratio distributions reproduce the
// paper's qualitative facts: most points change by well under 0.5 % per
// daily step (Fig. 1D), CMIP5 data is harder to compress than FLASH
// data, and abs550aer is the most challenging variable (§III-E).
package climate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Grid dimensions: 2.5° longitude × 2° latitude (§III-A).
const (
	NLon = 144
	NLat = 90
)

// N is the number of grid points per iteration.
const N = NLon * NLat

// VarSpec parameterizes one synthetic variable.
type VarSpec struct {
	// Name is the CMIP5 variable name.
	Name string
	// Base is the climatological mean level.
	Base float64
	// SpatialAmp scales the fixed spatial variation of the
	// climatology, relative to Base.
	SpatialAmp float64
	// SeasonalAmp scales the seasonal cycle, relative to Base.
	SeasonalAmp float64
	// WeatherAmp is the absolute amplitude of the advected spectral
	// weather field.
	WeatherAmp float64
	// WeatherRate is the per-iteration phase advance of the weather
	// modes; larger means bigger step-to-step changes.
	WeatherRate float64
	// JitterAmp is the log-scale standard deviation of the per-point
	// multiplicative jitter (each value is scaled by exp(JitterAmp·g)
	// with g ~ N(0,1)), the bulk of the step-to-step change.
	JitterAmp float64
	// SpikeProb is the per-point probability of drawing the jitter
	// with SpikeAmp instead of JitterAmp — sparse weather-front
	// spikes that give the change-ratio distribution the heavy tails
	// real fields have. They stretch the ratio range, which is what
	// defeats equal-width binning in the paper (§II-C1) while
	// clustering stays effective.
	SpikeProb float64
	// SpikeAmp is the log-scale jitter amplitude of spiked points.
	SpikeAmp float64
	// VolAmp makes the jitter amplitude itself vary smoothly in
	// space: point (x, y) uses JitterAmp·exp(VolAmp·s(x,y)) with
	// s ∈ [-1, 1]. A volatility continuum spreads the change-ratio
	// mass across scales, which is what makes a variable genuinely
	// hard for every binning strategy (abs550aer in the paper) and
	// produces Fig. 7's gradual incompressible-ratio decline as E
	// grows. Zero means uniform volatility.
	VolAmp float64
	// StepDays converts an iteration to days (1 daily, 30 monthly).
	StepDays float64
	// Floor clamps the deterministic part of the field from below,
	// keeping positive-definite quantities positive.
	Floor float64
}

// Specs lists the six synthetic variables matching the paper's CMIP5
// selection. Amplitudes are hand-tuned against the qualitative targets
// stated in the package comment; EXPERIMENTS.md records the resulting
// distributions.
var Specs = []VarSpec{
	// Surface upwelling longwave: large base, gentle weather — the
	// paper's Fig. 1 example where >75 % of points change < 0.5 %.
	{Name: "rlus", Base: 390, SpatialAmp: 0.18, SeasonalAmp: 0.04, WeatherAmp: 5.0, WeatherRate: 0.06, JitterAmp: 0.0012, SpikeProb: 0.005, SpikeAmp: 0.08, StepDays: 1, Floor: 50},
	// Soil moisture: slow, smooth.
	{Name: "mrsos", Base: 18, SpatialAmp: 0.45, SeasonalAmp: 0.12, WeatherAmp: 0.7, WeatherRate: 0.04, JitterAmp: 0.0010, SpikeProb: 0.004, SpikeAmp: 0.06, StepDays: 1, Floor: 0.5},
	// Runoff: tiny values spanning a wide range, spiky in relative
	// terms.
	{Name: "mrro", Base: 2.4e-5, SpatialAmp: 0.85, SeasonalAmp: 0.20, WeatherAmp: 7e-6, WeatherRate: 0.12, JitterAmp: 0.004, SpikeProb: 0.01, SpikeAmp: 0.12, StepDays: 1, Floor: 1e-7},
	// Surface downwelling longwave: like rlus but cloudier (more
	// weather, more frontal spikes).
	{Name: "rlds", Base: 345, SpatialAmp: 0.22, SeasonalAmp: 0.05, WeatherAmp: 11.0, WeatherRate: 0.10, JitterAmp: 0.0022, SpikeProb: 0.01, SpikeAmp: 0.15, StepDays: 1, Floor: 40},
	// Convective mass flux: monthly steps, large dynamic range.
	{Name: "mc", Base: 900, SpatialAmp: 0.75, SeasonalAmp: 0.30, WeatherAmp: 160, WeatherRate: 0.45, JitterAmp: 0.030, VolAmp: 1.1, SpikeProb: 0.01, SpikeAmp: 0.30, StepDays: 30, Floor: 1},
	// Aerosol absorption optical thickness: small base with volatile
	// multiplicative dynamics — the paper's hardest variable.
	{Name: "abs550aer", Base: 0.12, SpatialAmp: 0.80, SeasonalAmp: 0.15, WeatherAmp: 0.02, WeatherRate: 0.30, JitterAmp: 0.15, VolAmp: 0.9, SpikeProb: 0.007, SpikeAmp: 0.35, StepDays: 1, Floor: 0.004},
}

// VariableNames lists the variable names in Specs order.
func VariableNames() []string {
	names := make([]string, len(Specs))
	for i, s := range Specs {
		names[i] = s.Name
	}
	return names
}

// SpecFor returns the spec for a variable name.
func SpecFor(name string) (VarSpec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return VarSpec{}, fmt.Errorf("climate: unknown variable %q (have %v)", name, VariableNames())
}

// mode is one spectral weather component.
type mode struct {
	kx, ky float64 // wavevector (radians per grid index)
	omega  float64 // temporal frequency (radians per day)
	phase  float64
	amp    float64
}

// Generator produces iterations of one variable. Iterations are pure
// functions of (spec, seed, index): two generators with equal inputs
// emit identical data, and any iteration can be regenerated directly.
type Generator struct {
	spec  VarSpec
	seed  int64
	modes []mode
	// climatology, seasonal phase, and jitter amplitude per point,
	// precomputed.
	clim     []float64
	seasPhas []float64
	jitter   []float64
}

// ErrUnknownVariable reports a variable name not present in Specs.
var ErrUnknownVariable = errors.New("climate: unknown variable")

// NewGenerator builds a generator for the named variable.
func NewGenerator(name string, seed int64) (*Generator, error) {
	spec, err := SpecFor(name)
	if err != nil {
		return nil, err
	}
	return NewGeneratorSpec(spec, seed), nil
}

// NewGeneratorSpec builds a generator for an explicit spec (used by
// tests and custom workloads).
func NewGeneratorSpec(spec VarSpec, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed ^ int64(hashString(spec.Name))))
	const nModes = 48
	g := &Generator{
		spec:     spec,
		seed:     seed,
		modes:    make([]mode, nModes),
		clim:     make([]float64, N),
		seasPhas: make([]float64, N),
		jitter:   make([]float64, N),
	}
	for i := range g.modes {
		// Wavenumbers biased to long wavelengths (red spectrum), like
		// real atmospheric fields.
		kx := (rng.Float64()*6 + 0.5) * 2 * math.Pi / NLon
		ky := (rng.Float64()*5 + 0.5) * 2 * math.Pi / NLat
		if rng.Intn(2) == 0 {
			kx = -kx
		}
		wav := math.Hypot(kx*NLon, ky*NLat)
		g.modes[i] = mode{
			kx:    kx,
			ky:    ky,
			omega: spec.WeatherRate * (0.5 + rng.Float64()),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   spec.WeatherAmp / math.Sqrt(nModes) * (20 / (10 + wav)) * (0.5 + rng.Float64()),
		}
	}
	for j := 0; j < NLat; j++ {
		lat := -math.Pi/2 + (float64(j)+0.5)*math.Pi/NLat
		for i := 0; i < NLon; i++ {
			lon := (float64(i) + 0.5) * 2 * math.Pi / NLon
			idx := j*NLon + i
			// Fixed climatology: zonal structure plus seeded
			// longitudinal waves.
			cl := 1 + spec.SpatialAmp*(0.6*math.Cos(lat)*math.Cos(lat)-0.4+
				0.35*math.Sin(2*lon+float64(seed%17))*math.Cos(3*lat)+
				0.25*math.Cos(5*lon-2*lat))
			g.clim[idx] = spec.Base * cl
			// Seasonal phase flips hemisphere to hemisphere.
			g.seasPhas[idx] = math.Pi * math.Sin(lat)
			// Smooth volatility field in [-1, 1].
			vol := 0.6*math.Sin(3*lon+float64(seed%13))*math.Cos(2*lat) +
				0.4*math.Sin(7*lon-3*lat+1.1)
			g.jitter[idx] = spec.JitterAmp * math.Exp(spec.VolAmp*vol)
		}
	}
	return g
}

// Name returns the variable name.
func (g *Generator) Name() string { return g.spec.Name }

// Spec returns the generator's spec.
func (g *Generator) Spec() VarSpec { return g.spec }

// Points returns the number of grid points per iteration.
func (g *Generator) Points() int { return N }

// Iteration returns the field at iteration index i (i >= 0), as a flat
// row-major [NLat*NLon] array.
func (g *Generator) Iteration(i int) []float64 {
	if i < 0 {
		panic(fmt.Sprintf("climate: negative iteration %d", i))
	}
	t := float64(i) * g.spec.StepDays
	out := make([]float64, N)
	season := 2 * math.Pi * t / 365.25
	for j := 0; j < NLat; j++ {
		for x := 0; x < NLon; x++ {
			idx := j*NLon + x
			v := g.clim[idx] * (1 + g.spec.SeasonalAmp*math.Sin(season+g.seasPhas[idx]))
			for _, m := range g.modes {
				v += m.amp * math.Cos(m.kx*float64(x)+m.ky*float64(j)-m.omega*t+m.phase)
			}
			if v < g.spec.Floor {
				v = g.spec.Floor
			}
			// Counter-based multiplicative jitter: deterministic in
			// (seed, iteration, point). Lognormal so values stay
			// positive; a sparse fraction of points draws the spike
			// amplitude instead, giving heavy tails.
			salt := uint64(g.seed) ^ hashString(g.spec.Name)
			amp := g.jitter[idx]
			if g.spec.SpikeProb > 0 && uniform(salt^0xA5A5, uint64(i), uint64(idx)) < g.spec.SpikeProb {
				amp = g.spec.SpikeAmp
			}
			v *= math.Exp(amp * gauss(salt, uint64(i), uint64(idx)))
			out[idx] = v
		}
	}
	return out
}

// Iterations returns iterations [first, first+count).
func (g *Generator) Iterations(first, count int) [][]float64 {
	out := make([][]float64, count)
	for k := range out {
		out[k] = g.Iteration(first + k)
	}
	return out
}

// gauss returns an approximately standard-normal deviate derived from a
// counter-based hash of its inputs (sum of four uniforms, Irwin–Hall
// normalized). Deterministic and stateless.
func gauss(a, b, c uint64) float64 {
	h := splitmix(a ^ splitmix(b^splitmix(c)))
	var sum float64
	for k := 0; k < 4; k++ {
		h = splitmix(h)
		sum += float64(h>>11) / float64(1<<53)
	}
	// Irwin–Hall(4): mean 2, variance 4/12; normalize.
	return (sum - 2) / math.Sqrt(4.0/12.0)
}

// uniform returns a deterministic draw in [0, 1) from a counter-based
// hash of its inputs.
func uniform(a, b, c uint64) float64 {
	h := splitmix(a ^ splitmix(b^splitmix(c)))
	return float64(h>>11) / float64(1<<53)
}

// splitmix is the SplitMix64 finalizer.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString hashes a variable name (FNV-1a).
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
