package climate

import (
	"math"
	"testing"
)

func TestVariableNamesMatchPaper(t *testing.T) {
	want := map[string]bool{
		"rlus": true, "mrsos": true, "mrro": true,
		"rlds": true, "mc": true, "abs550aer": true,
	}
	names := VariableNames()
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected variable %q", n)
		}
	}
}

func TestSpecFor(t *testing.T) {
	s, err := SpecFor("rlus")
	if err != nil || s.Name != "rlus" {
		t.Errorf("SpecFor(rlus) = %+v, %v", s, err)
	}
	if _, err := SpecFor("nope"); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestGridSize(t *testing.T) {
	// 2.5° × 2° resolution = 144 × 90 = 12960 points.
	if N != 12960 {
		t.Errorf("N = %d, want 12960", N)
	}
	g, err := NewGenerator("rlus", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Points() != 12960 {
		t.Errorf("Points = %d", g.Points())
	}
	if len(g.Iteration(0)) != 12960 {
		t.Errorf("iteration length = %d", len(g.Iteration(0)))
	}
}

func TestIterationIsPureFunction(t *testing.T) {
	g1, _ := NewGenerator("rlds", 7)
	g2, _ := NewGenerator("rlds", 7)
	a := g1.Iteration(13)
	b := g2.Iteration(13)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration 13 differs at %d between equal generators", i)
		}
	}
	// Regenerating out of order matches too.
	c := g1.Iteration(13)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("re-generated iteration differs at %d", i)
		}
	}
}

func TestSeedsAndVariablesDiffer(t *testing.T) {
	a, _ := NewGenerator("rlus", 1)
	b, _ := NewGenerator("rlus", 2)
	c, _ := NewGenerator("rlds", 1)
	ia, ib, ic := a.Iteration(0), b.Iteration(0), c.Iteration(0)
	sameAB, sameAC := true, true
	for i := range ia {
		if ia[i] != ib[i] {
			sameAB = false
		}
		if ia[i] != ic[i] {
			sameAC = false
		}
	}
	if sameAB {
		t.Error("different seeds gave identical fields")
	}
	if sameAC {
		t.Error("different variables gave identical fields")
	}
}

func TestFieldsFiniteAndAboveFloor(t *testing.T) {
	for _, name := range VariableNames() {
		g, err := NewGenerator(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		spec := g.Spec()
		for _, it := range []int{0, 1, 50} {
			field := g.Iteration(it)
			for i, v := range field {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s iter %d point %d = %v", name, it, i, v)
				}
				// Jitter can dip slightly below the floor; it must
				// stay positive and near it.
				if v < spec.Floor*0.5 {
					t.Fatalf("%s iter %d point %d = %v far below floor %v", name, it, i, v, spec.Floor)
				}
			}
		}
	}
}

func changeRatios(g *Generator, iter int) []float64 {
	prev := g.Iteration(iter)
	cur := g.Iteration(iter + 1)
	out := make([]float64, 0, len(prev))
	for i := range prev {
		if prev[i] != 0 {
			out = append(out, (cur[i]-prev[i])/prev[i])
		}
	}
	return out
}

func fracBelow(ratios []float64, thresh float64) float64 {
	n := 0
	for _, r := range ratios {
		if math.Abs(r) < thresh {
			n++
		}
	}
	return float64(n) / float64(len(ratios))
}

func TestRlusMatchesPaperFig1D(t *testing.T) {
	// "more than 75% of climate rlus data remains unchanged or only
	// changes with a percentage less than 0.5%" (§II-A).
	g, _ := NewGenerator("rlus", 11)
	for _, iter := range []int{5, 20, 60} {
		ratios := changeRatios(g, iter)
		if f := fracBelow(ratios, 0.005); f < 0.75 {
			t.Errorf("rlus iter %d: only %.1f%% of changes below 0.5%%", iter, f*100)
		}
	}
}

func TestAbs550aerIsHardest(t *testing.T) {
	// §III-E calls abs550aer "one of the most challenging" variables:
	// its change ratios must be fatter-tailed than rlus's.
	ga, _ := NewGenerator("abs550aer", 11)
	gr, _ := NewGenerator("rlus", 11)
	fa := fracBelow(changeRatios(ga, 10), 0.001)
	fr := fracBelow(changeRatios(gr, 10), 0.001)
	if fa >= fr {
		t.Errorf("abs550aer small-change fraction %.3f not below rlus %.3f", fa, fr)
	}
}

func TestMonthlyVariableHasLargerSteps(t *testing.T) {
	gm, _ := NewGenerator("mc", 11)
	gr, _ := NewGenerator("mrsos", 11)
	// Median |ratio| of mc should exceed mrsos's.
	med := func(rs []float64) float64 {
		abs := make([]float64, len(rs))
		for i, r := range rs {
			abs[i] = math.Abs(r)
		}
		// Cheap selection: mean of |ratio| is a fine proxy here.
		var s float64
		for _, a := range abs {
			s += a
		}
		return s / float64(len(abs))
	}
	if med(changeRatios(gm, 5)) <= med(changeRatios(gr, 5)) {
		t.Error("monthly mc changes not larger than daily mrsos changes")
	}
}

func TestTemporalSmoothness(t *testing.T) {
	// Consecutive iterations must be far closer than distant ones —
	// the temporal redundancy NUMARCK exploits.
	g, _ := NewGenerator("rlus", 13)
	a, b, far := g.Iteration(10), g.Iteration(11), g.Iteration(100)
	var near2, far2 float64
	for i := range a {
		near2 += (b[i] - a[i]) * (b[i] - a[i])
		far2 += (far[i] - a[i]) * (far[i] - a[i])
	}
	if near2*4 > far2 {
		t.Errorf("consecutive distance² %v not much smaller than distant %v", near2, far2)
	}
}

func TestIterationsBatch(t *testing.T) {
	g, _ := NewGenerator("mrro", 5)
	batch := g.Iterations(3, 4)
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	single := g.Iteration(5)
	for i := range single {
		if batch[2][i] != single[i] {
			t.Fatalf("batch iteration 5 differs at %d", i)
		}
	}
}

func TestNegativeIterationPanics(t *testing.T) {
	g, _ := NewGenerator("rlus", 1)
	defer func() {
		if recover() == nil {
			t.Error("negative iteration did not panic")
		}
	}()
	g.Iteration(-1)
}

func TestGaussMoments(t *testing.T) {
	// The counter-based gaussian must have roughly zero mean and unit
	// variance.
	var sum, sum2 float64
	n := 100000
	for i := 0; i < n; i++ {
		v := gauss(1, uint64(i), 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gauss mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("gauss variance = %v", variance)
	}
}

func BenchmarkIteration(b *testing.B) {
	g, err := NewGenerator("rlus", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Iteration(i)
	}
}
