package flash

import (
	"math"
	"testing"
)

func newSmall(t *testing.T) *Sim {
	t.Helper()
	s, err := New(Config{BlocksX: 3, BlocksY: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 81 {
		t.Errorf("default blocks = %d, want 81 (~80 as in the paper)", s.Blocks())
	}
	if s.Cells() != 81*256 {
		t.Errorf("cells = %d", s.Cells())
	}
}

func TestNewRejectsHugeGrid(t *testing.T) {
	if _, err := New(Config{BlocksX: 5000, BlocksY: 1}); err == nil {
		t.Error("huge grid accepted")
	}
}

func TestCheckpointVariablesComplete(t *testing.T) {
	s := newSmall(t)
	snap := s.Checkpoint()
	if len(snap.Vars) != 10 {
		t.Fatalf("%d variables", len(snap.Vars))
	}
	for _, v := range Variables {
		arr, ok := snap.Vars[v]
		if !ok {
			t.Fatalf("missing variable %q", v)
		}
		if len(arr) != s.Cells() {
			t.Fatalf("variable %q has %d cells, want %d", v, len(arr), s.Cells())
		}
		for i, x := range arr {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("variable %q cell %d = %v", v, i, x)
			}
		}
	}
}

func TestPhysicalInvariants(t *testing.T) {
	s := newSmall(t)
	s.StepN(20)
	snap := s.Checkpoint()
	for i := 0; i < s.Cells(); i++ {
		if snap.Vars["dens"][i] <= 0 {
			t.Fatalf("non-positive density at %d: %v", i, snap.Vars["dens"][i])
		}
		if snap.Vars["pres"][i] <= 0 {
			t.Fatalf("non-positive pressure at %d: %v", i, snap.Vars["pres"][i])
		}
		if snap.Vars["eint"][i] <= 0 {
			t.Fatalf("non-positive internal energy at %d", i)
		}
		// ener = eint + kinetic.
		kin := 0.5 * (snap.Vars["velx"][i]*snap.Vars["velx"][i] +
			snap.Vars["vely"][i]*snap.Vars["vely"][i] +
			snap.Vars["velz"][i]*snap.Vars["velz"][i])
		if math.Abs(snap.Vars["ener"][i]-(snap.Vars["eint"][i]+kin)) > 1e-9*snap.Vars["ener"][i] {
			t.Fatalf("energy identity broken at %d", i)
		}
		if snap.Vars["gamc"][i] != Gamma || snap.Vars["game"][i] != Gamma {
			t.Fatalf("gamma fields wrong at %d", i)
		}
	}
}

func TestPresTempProportional(t *testing.T) {
	// The paper notes pres and temp behave identically because the
	// same computation produces both; here temp = pres/(dens·R).
	s := newSmall(t)
	s.StepN(10)
	snap := s.Checkpoint()
	for i := 0; i < s.Cells(); i++ {
		want := snap.Vars["pres"][i] / (snap.Vars["dens"][i] * RGas)
		if math.Abs(snap.Vars["temp"][i]-want) > 1e-12*math.Abs(want) {
			t.Fatalf("temp relation broken at %d", i)
		}
	}
}

func TestVelzIsLiveField(t *testing.T) {
	// velz must be nonzero somewhere and have nonzero prev values so
	// NUMARCK can form change ratios for it.
	s := newSmall(t)
	snap := s.Checkpoint()
	nonzero := 0
	for _, w := range snap.Vars["velz"] {
		if w != 0 {
			nonzero++
		}
	}
	if nonzero < s.Cells()/2 {
		t.Errorf("velz nonzero in only %d/%d cells", nonzero, s.Cells())
	}
}

func TestStepAdvancesTimeAndEvolvesState(t *testing.T) {
	s := newSmall(t)
	snap0 := s.Checkpoint()
	dt := s.Step()
	if dt <= 0 {
		t.Fatalf("dt = %v", dt)
	}
	if s.Time() != dt || s.StepCount() != 1 {
		t.Errorf("time %v step %d", s.Time(), s.StepCount())
	}
	snap1 := s.Checkpoint()
	changed := 0
	for i := range snap0.Vars["pres"] {
		if snap0.Vars["pres"][i] != snap1.Vars["pres"][i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("pressure field did not evolve")
	}
}

func TestChangeRatiosAreSmallBetweenSteps(t *testing.T) {
	// The property NUMARCK exploits: consecutive checkpoints differ by
	// small relative changes for most points.
	s := newSmall(t)
	s.StepN(10) // move past the initial transient
	prev := s.Checkpoint()
	s.StepN(2)
	cur := s.Checkpoint()
	small := 0
	total := 0
	for i := range prev.Vars["dens"] {
		p, c := prev.Vars["dens"][i], cur.Vars["dens"][i]
		if p == 0 {
			continue
		}
		total++
		if math.Abs((c-p)/p) < 0.01 {
			small++
		}
	}
	if frac := float64(small) / float64(total); frac < 0.5 {
		t.Errorf("only %.1f%% of dens changes below 1%%", frac*100)
	}
}

func TestMassConservation(t *testing.T) {
	// Outflow boundaries leak mass only near the edges; over a few
	// steps with a central blast the total mass change must be tiny.
	s := newSmall(t)
	mass0 := totalMass(s)
	s.StepN(20)
	mass1 := totalMass(s)
	if rel := math.Abs(mass1-mass0) / mass0; rel > 0.01 {
		t.Errorf("mass changed by %.2f%%", rel*100)
	}
}

func totalMass(s *Sim) float64 {
	snap := s.Checkpoint()
	var m float64
	for _, rho := range snap.Vars["dens"] {
		m += rho
	}
	return m
}

func TestDeterministicEvolution(t *testing.T) {
	a, err := New(Config{BlocksX: 2, BlocksY: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{BlocksX: 2, BlocksY: 2, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.StepN(15)
	b.StepN(15)
	sa, sb := a.Checkpoint(), b.Checkpoint()
	for _, v := range Variables {
		for i := range sa.Vars[v] {
			if sa.Vars[v][i] != sb.Vars[v][i] {
				t.Fatalf("variable %q differs at %d with different worker counts", v, i)
			}
		}
	}
}

func TestSeedChangesInitialCondition(t *testing.T) {
	a, _ := New(Config{BlocksX: 2, BlocksY: 2, Seed: 1})
	b, _ := New(Config{BlocksX: 2, BlocksY: 2, Seed: 2})
	sa, sb := a.Checkpoint(), b.Checkpoint()
	same := true
	for i := range sa.Vars["dens"] {
		if sa.Vars["dens"][i] != sb.Vars["dens"][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical initial density")
	}
}

func TestRestartRoundTrip(t *testing.T) {
	// Restarting from an exact checkpoint must reproduce the original
	// run. The checkpoint stores primitives, so the conserved state is
	// rebuilt with one rounding each way: the continued run matches to
	// near machine precision rather than bit-for-bit.
	s := newSmall(t)
	s.StepN(10)
	snap := s.Checkpoint()
	s.StepN(5)
	want := s.Checkpoint()

	r := newSmall(t)
	if err := r.Restart(snap); err != nil {
		t.Fatal(err)
	}
	if r.StepCount() != snap.Step || r.Time() != snap.Time {
		t.Errorf("restart step/time = %d/%v", r.StepCount(), r.Time())
	}
	r.StepN(5)
	got := r.Checkpoint()
	for _, v := range Variables {
		// Scale the tolerance by the field's magnitude: cells with
		// near-zero velocity would otherwise demand sub-ulp agreement.
		var fieldScale float64
		for _, w := range want.Vars[v] {
			if a := math.Abs(w); a > fieldScale {
				fieldScale = a
			}
		}
		if fieldScale == 0 {
			fieldScale = 1
		}
		for i := range want.Vars[v] {
			w, g := want.Vars[v][i], got.Vars[v][i]
			if math.Abs(g-w) > 1e-9*fieldScale {
				t.Fatalf("variable %q diverged at cell %d after exact restart: %v vs %v", v, i, g, w)
			}
		}
	}
}

func TestRestartValidation(t *testing.T) {
	s := newSmall(t)
	snap := s.Checkpoint()

	missing := &Snapshot{Vars: map[string][]float64{}}
	if err := s.Restart(missing); err == nil {
		t.Error("missing variables accepted")
	}

	short := s.Checkpoint()
	short.Vars["dens"] = short.Vars["dens"][:10]
	if err := s.Restart(short); err == nil {
		t.Error("wrong-size snapshot accepted")
	}

	bad := s.Checkpoint()
	bad.Vars["dens"][0] = -1
	if err := s.Restart(bad); err == nil {
		t.Error("negative density accepted")
	}

	bad2 := s.Checkpoint()
	bad2.Vars["pres"][3] = math.NaN()
	if err := s.Restart(bad2); err == nil {
		t.Error("NaN pressure accepted")
	}

	// The untouched original snapshot still restarts fine.
	if err := s.Restart(snap); err != nil {
		t.Errorf("valid restart failed: %v", err)
	}
}

func TestRestartFromPerturbedCheckpointStaysStable(t *testing.T) {
	// §III-G: FLASH must run successfully from approximated restart
	// files. Perturb a checkpoint by ~0.1% and continue.
	s := newSmall(t)
	s.StepN(10)
	snap := s.Checkpoint()
	for _, v := range []string{"dens", "pres", "velx", "vely", "velz"} {
		for i := range snap.Vars[v] {
			snap.Vars[v][i] *= 1 + 0.001*math.Sin(float64(i))
		}
	}
	r := newSmall(t)
	if err := r.Restart(snap); err != nil {
		t.Fatal(err)
	}
	r.StepN(10)
	after := r.Checkpoint()
	for i, rho := range after.Vars["dens"] {
		if rho <= 0 || math.IsNaN(rho) {
			t.Fatalf("density %v at %d after perturbed restart", rho, i)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	s, err := New(Config{BlocksX: 3, BlocksY: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	s, err := New(Config{BlocksX: 3, BlocksY: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Checkpoint()
	}
}
