package flash

import (
	"math"
	"testing"
)

func TestSecondOrderStable(t *testing.T) {
	s, err := New(Config{BlocksX: 3, BlocksY: 3, Seed: 9, SecondOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	s.StepN(30)
	snap := s.Checkpoint()
	for _, v := range Variables {
		for i, x := range snap.Vars[v] {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s[%d] = %v", v, i, x)
			}
		}
	}
	for i, rho := range snap.Vars["dens"] {
		if rho <= 0 {
			t.Fatalf("density %v at %d", rho, i)
		}
	}
	for i, p := range snap.Vars["pres"] {
		if p <= 0 {
			t.Fatalf("pressure %v at %d", p, i)
		}
	}
}

// TestSecondOrderSharperShocks: the MUSCL update must preserve steeper
// gradients than the (diffusive) first-order one after identical step
// counts from identical initial conditions.
func TestSecondOrderSharperShocks(t *testing.T) {
	maxGrad := func(second bool) float64 {
		s, err := New(Config{BlocksX: 3, BlocksY: 3, Seed: 10, SecondOrder: second})
		if err != nil {
			t.Fatal(err)
		}
		s.StepN(25)
		snap := s.Checkpoint()
		dens := snap.Vars["pres"]
		// Max difference between horizontally adjacent cells within a
		// block row (cells are laid out block by block, 16 per row).
		var g float64
		for i := 1; i < len(dens); i++ {
			if i%NXB == 0 {
				continue // block-row boundary in the flat layout
			}
			if d := math.Abs(dens[i] - dens[i-1]); d > g {
				g = d
			}
		}
		return g
	}
	first := maxGrad(false)
	second := maxGrad(true)
	if second <= first {
		t.Errorf("second-order max gradient %v not above first-order %v", second, first)
	}
}

func TestSecondOrderRestartRoundTrip(t *testing.T) {
	s, err := New(Config{BlocksX: 2, BlocksY: 2, Seed: 11, SecondOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	s.StepN(8)
	snap := s.Checkpoint()
	s.StepN(4)
	want := s.Checkpoint()

	r, err := New(Config{BlocksX: 2, BlocksY: 2, Seed: 11, SecondOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restart(snap); err != nil {
		t.Fatal(err)
	}
	r.StepN(4)
	got := r.Checkpoint()
	for _, v := range Variables {
		var scale float64
		for _, w := range want.Vars[v] {
			if a := math.Abs(w); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for i := range want.Vars[v] {
			if math.Abs(got.Vars[v][i]-want.Vars[v][i]) > 1e-9*scale {
				t.Fatalf("%s diverged at %d after second-order restart", v, i)
			}
		}
	}
}

func TestMinmod(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{1, 2, 1},
		{2, 1, 1},
		{-1, -3, -1},
		{-3, -1, -1},
		{1, -1, 0},
		{-1, 1, 0},
		{0, 5, 0},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := minmod(c.a, c.b); got != c.want {
			t.Errorf("minmod(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
