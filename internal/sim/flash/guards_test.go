package flash

import (
	"math"
	"testing"
)

// TestGuardCellsMirrorNeighbors verifies the block-structured exchange:
// after exchangeGuards, each block's guard cells hold the interior
// values of the adjacent block (or the clamped edge at the domain
// boundary) — the invariant FLASH's mesh maintains.
func TestGuardCellsMirrorNeighbors(t *testing.T) {
	s, err := New(Config{BlocksX: 3, BlocksY: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.StepN(3)
	// Pick the middle block of the top row (bx=1, by=0): its left
	// guard columns must equal block (0,0)'s rightmost interior
	// columns.
	left := s.blocks[0*s.nbx+0]
	mid := s.blocks[0*s.nbx+1]
	for v := 0; v < nQ; v++ {
		for iy := NGuard; iy < NGuard+NYB; iy++ {
			for g := 0; g < NGuard; g++ {
				guard := mid.q[v][cellIdx(g, iy)]
				src := left.q[v][cellIdx(NGuard+NXB-NGuard+g, iy)]
				if guard != src {
					t.Fatalf("var %d guard (%d,%d) = %v, neighbor interior = %v", v, g, iy, guard, src)
				}
			}
		}
	}
	// Domain boundary: block (0,0)'s left guards clamp to its own
	// first interior column (outflow).
	for v := 0; v < nQ; v++ {
		for iy := NGuard; iy < NGuard+NYB; iy++ {
			edge := left.q[v][cellIdx(NGuard, iy)]
			for g := 0; g < NGuard; g++ {
				if left.q[v][cellIdx(g, iy)] != edge {
					t.Fatalf("var %d boundary guard (%d,%d) != clamped edge", v, g, iy)
				}
			}
		}
	}
}

// TestPassiveScalarBounded: the z-momentum is passively advected, so
// velz must stay within its initial range (plus tiny numerical
// excursions) — a maximum-principle check on the advection scheme.
func TestPassiveScalarBounded(t *testing.T) {
	s, err := New(Config{BlocksX: 3, BlocksY: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap0 := s.Checkpoint()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, w := range snap0.Vars["velz"] {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	s.StepN(25)
	snap := s.Checkpoint()
	margin := 0.05 * (hi - lo)
	for i, w := range snap.Vars["velz"] {
		if w < lo-margin || w > hi+margin {
			t.Fatalf("velz[%d] = %v escaped initial range [%v, %v]", i, w, lo, hi)
		}
	}
}

// TestTimeStepPositiveAndBounded: dt from the CFL condition must stay
// positive and not explode as the blast evolves.
func TestTimeStepPositiveAndBounded(t *testing.T) {
	s, err := New(Config{BlocksX: 2, BlocksY: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i := 0; i < 30; i++ {
		dt := s.Step()
		if dt <= 0 || math.IsNaN(dt) {
			t.Fatalf("step %d: dt = %v", i, dt)
		}
		if i > 0 && (dt > prev*3 || dt < prev/3) {
			t.Fatalf("step %d: dt jumped %v -> %v", i, prev, dt)
		}
		prev = dt
	}
}

// TestEnergyBudget: with clamped boundaries the background wind carries
// energy in upstream and out downstream in near balance, and the HLL
// scheme is dissipative — total energy must drift only slightly over a
// short run, never blow up or collapse.
func TestEnergyBudget(t *testing.T) {
	s, err := New(Config{BlocksX: 3, BlocksY: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	total := func() float64 {
		snap := s.Checkpoint()
		var e float64
		for i, rho := range snap.Vars["dens"] {
			e += rho * snap.Vars["ener"][i]
		}
		return e
	}
	e0 := total()
	s.StepN(20)
	e1 := total()
	if drift := math.Abs(e1-e0) / e0; drift > 0.02 {
		t.Errorf("total energy drifted %.2f%%: %v -> %v", drift*100, e0, e1)
	}
}
