// Package flash implements a block-structured compressible-Euler
// hydrodynamics simulator that stands in for the FLASH code (Fryxell et
// al. 2000) used by the NUMARCK paper to generate checkpoint data.
//
// Like FLASH, the problem domain is divided into blocks of 16×16
// interior cells with 4 guard cells on each side that hold neighbor
// data, and checkpoints carry the 10 variables the paper lists:
// dens, eint, ener, gamc, game, pres, temp, velx, vely, velz. The
// solver is a 2-D finite-volume scheme (HLL fluxes, gamma-law EOS,
// CFL-limited explicit time stepping) with a passively advected
// z-momentum so velz is a live, nonzero field. Adaptive mesh refinement
// is not modeled: NUMARCK sees only the flat per-variable value arrays
// of a checkpoint, and a uniform block mesh produces those with the
// same temporal smoothness properties (see DESIGN.md, substitutions).
//
// Block updates run in parallel across goroutines, one block per task,
// mirroring FLASH's per-process block distribution.
package flash

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Mesh geometry constants, matching the paper's setup (§III-A: 16×16
// blocks, 4 guard cells per side).
const (
	// NXB and NYB are the interior cells per block in x and y.
	NXB = 16
	NYB = 16
	// NGuard is the guard-cell depth on each side.
	NGuard = 4

	totW = NXB + 2*NGuard // padded block width
	totH = NYB + 2*NGuard // padded block height
)

// Gamma is the ratio of specific heats of the gamma-law EOS.
const Gamma = 1.4

// RGas is the specific gas constant used to derive temperature
// (temp = pres / (dens · RGas)); its exact value only scales temp.
const RGas = 8.314e2

// Variables lists the 10 checkpoint variables in FLASH's checkpoint
// order (§III-A).
var Variables = []string{
	"dens", "eint", "ener", "gamc", "game", "pres", "temp", "velx", "vely", "velz",
}

// conserved state indices inside a block.
const (
	qRho  = 0 // density
	qMx   = 1 // x momentum density
	qMy   = 2 // y momentum density
	qMz   = 3 // z momentum density (passively advected)
	qEner = 4 // total energy density
	nQ    = 5
)

// block is one mesh block: nQ conserved fields over the padded cell
// array, row-major with x fastest.
type block struct {
	q [nQ][]float64
}

func newBlock() *block {
	b := &block{}
	for v := range b.q {
		b.q[v] = make([]float64, totW*totH)
	}
	return b
}

func cellIdx(ix, iy int) int { return iy*totW + ix }

// Config describes a simulation setup.
type Config struct {
	// BlocksX, BlocksY is the block grid; the paper runs ~80 blocks
	// per process, so the default 9×9 = 81.
	BlocksX, BlocksY int
	// CFL is the Courant number (default 0.4).
	CFL float64
	// Workers bounds update parallelism (default GOMAXPROCS).
	Workers int
	// Seed perturbs the initial condition so distinct runs differ.
	Seed int64
	// SecondOrder enables MUSCL reconstruction with a minmod limiter
	// (second-order in space). The default first-order Godunov update
	// is more diffusive; second order keeps shocks sharper, closer to
	// what a production AMR code produces.
	SecondOrder bool
}

func (c Config) withDefaults() Config {
	if c.BlocksX <= 0 {
		c.BlocksX = 9
	}
	if c.BlocksY <= 0 {
		c.BlocksY = 9
	}
	if c.CFL <= 0 || c.CFL >= 1 {
		c.CFL = 0.4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Sim is a running simulation.
type Sim struct {
	cfg    Config
	blocks []*block // row-major block grid
	nbx    int
	nby    int
	dx, dy float64
	time   float64
	step   int
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("flash: invalid config")

// New creates a simulation with a Sedov-like central pressure pulse
// plus a smooth seeded perturbation field.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	if cfg.BlocksX > 1024 || cfg.BlocksY > 1024 {
		return nil, fmt.Errorf("%w: block grid %dx%d too large", ErrConfig, cfg.BlocksX, cfg.BlocksY)
	}
	s := &Sim{
		cfg: cfg,
		nbx: cfg.BlocksX,
		nby: cfg.BlocksY,
		dx:  1.0 / float64(cfg.BlocksX*NXB),
		dy:  1.0 / float64(cfg.BlocksY*NYB),
	}
	s.blocks = make([]*block, s.nbx*s.nby)
	for i := range s.blocks {
		s.blocks[i] = newBlock()
	}
	s.initBlast()
	s.exchangeGuards()
	return s, nil
}

// initBlast sets a smooth high-pressure Gaussian pulse at the domain
// center on a quiescent background, with seed-dependent long-wavelength
// perturbations in density and a gentle swirl in vz so every checkpoint
// variable is a live field.
func (s *Sim) initBlast() {
	seedPhase := float64(s.cfg.Seed%997) * 0.013
	for by := 0; by < s.nby; by++ {
		for bx := 0; bx < s.nbx; bx++ {
			b := s.blocks[by*s.nbx+bx]
			for iy := 0; iy < totH; iy++ {
				for ix := 0; ix < totW; ix++ {
					x := (float64(bx*NXB+ix-NGuard) + 0.5) * s.dx
					y := (float64(by*NYB+iy-NGuard) + 0.5) * s.dy
					r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5)

					rho := 1.0 + 0.05*math.Sin(2*math.Pi*x+seedPhase)*math.Cos(2*math.Pi*y-seedPhase)
					p := 0.1 + 1.6*math.Exp(-r2/0.008)
					// Background wind keeps the velocity fields well
					// away from zero, as in the paper's blast runs;
					// near-zero values would make relative change
					// ratios degenerate for every compressor.
					u := 1.20 + 0.10*math.Sin(2*math.Pi*y+seedPhase)
					v := 1.10 + 0.10*math.Cos(2*math.Pi*x-seedPhase)
					w := 1.00 + 0.10*math.Sin(2*math.Pi*x)*math.Sin(2*math.Pi*y+seedPhase)

					idx := cellIdx(ix, iy)
					b.q[qRho][idx] = rho
					b.q[qMx][idx] = rho * u
					b.q[qMy][idx] = rho * v
					b.q[qMz][idx] = rho * w
					b.q[qEner][idx] = p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
				}
			}
		}
	}
}

// Time returns the current simulation time.
func (s *Sim) Time() float64 { return s.time }

// StepCount returns the number of completed steps.
func (s *Sim) StepCount() int { return s.step }

// Cells returns the number of interior cells in the whole domain.
func (s *Sim) Cells() int { return s.nbx * s.nby * NXB * NYB }

// Blocks returns the number of mesh blocks.
func (s *Sim) Blocks() int { return len(s.blocks) }

// Step advances the simulation by one CFL-limited time step and returns
// the dt used.
func (s *Sim) Step() float64 {
	dt := s.cfg.CFL * s.stableDt()
	s.advance(dt)
	s.exchangeGuards()
	s.time += dt
	s.step++
	return dt
}

// StepN advances n steps.
func (s *Sim) StepN(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// stableDt returns the largest stable time step over the whole mesh.
func (s *Sim) stableDt() float64 {
	results := make([]float64, len(s.blocks))
	s.parallelBlocks(func(bi int) {
		b := s.blocks[bi]
		minDt := math.Inf(1)
		for iy := NGuard; iy < NGuard+NYB; iy++ {
			for ix := NGuard; ix < NGuard+NXB; ix++ {
				idx := cellIdx(ix, iy)
				rho := b.q[qRho][idx]
				u := b.q[qMx][idx] / rho
				v := b.q[qMy][idx] / rho
				w := b.q[qMz][idx] / rho
				p := (Gamma - 1) * (b.q[qEner][idx] - 0.5*rho*(u*u+v*v+w*w))
				if p < 1e-12 {
					p = 1e-12
				}
				c := math.Sqrt(Gamma * p / rho)
				dtx := s.dx / (math.Abs(u) + c)
				dty := s.dy / (math.Abs(v) + c)
				if dtx < minDt {
					minDt = dtx
				}
				if dty < minDt {
					minDt = dty
				}
			}
		}
		results[bi] = minDt
	})
	minDt := math.Inf(1)
	for _, dt := range results {
		if dt < minDt {
			minDt = dt
		}
	}
	return minDt
}

// advance applies one first-order Godunov (HLL) update to every block.
func (s *Sim) advance(dt float64) {
	next := make([]*block, len(s.blocks))
	s.parallelBlocks(func(bi int) {
		next[bi] = s.updateBlock(s.blocks[bi], dt)
	})
	s.blocks = next
}

// updateBlock computes the HLL flux update of one block, writing a new
// block so neighbors still see the old state (time-unsplit update).
// With SecondOrder, interface states are MUSCL-reconstructed with a
// minmod limiter; otherwise they are the piecewise-constant cell
// values (first-order Godunov).
func (s *Sim) updateBlock(b *block, dt float64) *block {
	nb := newBlock()
	for v := 0; v < nQ; v++ {
		copy(nb.q[v], b.q[v])
	}
	lamX := dt / s.dx
	lamY := dt / s.dy
	second := s.cfg.SecondOrder

	var fL, fR [nQ]float64
	for iy := NGuard; iy < NGuard+NYB; iy++ {
		for ix := NGuard; ix < NGuard+NXB; ix++ {
			idx := cellIdx(ix, iy)
			s.interfaceFlux(b, cellIdx(ix-1, iy), idx, 0, second, &fL)
			s.interfaceFlux(b, idx, cellIdx(ix+1, iy), 0, second, &fR)
			for v := 0; v < nQ; v++ {
				nb.q[v][idx] -= lamX * (fR[v] - fL[v])
			}
			s.interfaceFlux(b, cellIdx(ix, iy-1), idx, 1, second, &fL)
			s.interfaceFlux(b, idx, cellIdx(ix, iy+1), 1, second, &fR)
			for v := 0; v < nQ; v++ {
				nb.q[v][idx] -= lamY * (fR[v] - fL[v])
			}
		}
	}
	return nb
}

// interfaceFlux computes the HLL flux at the interface between cells l
// and r along dir, with optional MUSCL reconstruction of the interface
// states from the neighboring cells.
func (s *Sim) interfaceFlux(b *block, l, r int, dir int, second bool, out *[nQ]float64) {
	var uL, uR [nQ]float64
	if !second {
		for v := 0; v < nQ; v++ {
			uL[v] = b.q[v][l]
			uR[v] = b.q[v][r]
		}
		hllFluxStates(&uL, &uR, dir, out)
		return
	}
	// Neighbors one cell beyond each side of the interface, along dir.
	stride := 1
	if dir == 1 {
		stride = totW
	}
	ll := l - stride
	rr := r + stride
	for v := 0; v < nQ; v++ {
		qv := b.q[v]
		uL[v] = qv[l] + 0.5*minmod(qv[l]-qv[ll], qv[r]-qv[l])
		uR[v] = qv[r] - 0.5*minmod(qv[r]-qv[l], qv[rr]-qv[r])
	}
	// Reconstruction can produce unphysical interface states near
	// strong gradients; fall back to first order there.
	if uL[qRho] <= 0 || uR[qRho] <= 0 {
		for v := 0; v < nQ; v++ {
			uL[v] = b.q[v][l]
			uR[v] = b.q[v][r]
		}
	}
	hllFluxStates(&uL, &uR, dir, out)
}

// minmod is the classic symmetric slope limiter.
func minmod(a, b float64) float64 {
	switch {
	case a > 0 && b > 0:
		return math.Min(a, b)
	case a < 0 && b < 0:
		return math.Max(a, b)
	default:
		return 0
	}
}

// hllFluxStates computes the HLL numerical flux between two states
// along direction dir (0 = x, 1 = y) into out.
func hllFluxStates(uL, uR *[nQ]float64, dir int, out *[nQ]float64) {
	var fL, fR [nQ]float64
	vnL, cL := physFlux(uL, dir, &fL)
	vnR, cR := physFlux(uR, dir, &fR)

	sL := math.Min(vnL-cL, vnR-cR)
	sR := math.Max(vnL+cL, vnR+cR)
	switch {
	case sL >= 0:
		*out = fL
	case sR <= 0:
		*out = fR
	default:
		inv := 1 / (sR - sL)
		for v := 0; v < nQ; v++ {
			out[v] = (sR*fL[v] - sL*fR[v] + sL*sR*(uR[v]-uL[v])) * inv
		}
	}
}

// physFlux computes the physical Euler flux of state u along dir and
// returns the normal velocity and sound speed.
func physFlux(u *[nQ]float64, dir int, f *[nQ]float64) (vn, c float64) {
	rho := u[qRho]
	if rho < 1e-12 {
		rho = 1e-12
	}
	ux := u[qMx] / rho
	uy := u[qMy] / rho
	uz := u[qMz] / rho
	p := (Gamma - 1) * (u[qEner] - 0.5*rho*(ux*ux+uy*uy+uz*uz))
	if p < 1e-12 {
		p = 1e-12
	}
	if dir == 0 {
		vn = ux
	} else {
		vn = uy
	}
	c = math.Sqrt(Gamma * p / rho)

	f[qRho] = rho * vn
	f[qMx] = u[qMx] * vn
	f[qMy] = u[qMy] * vn
	f[qMz] = u[qMz] * vn
	f[qEner] = (u[qEner] + p) * vn
	if dir == 0 {
		f[qMx] += p
	} else {
		f[qMy] += p
	}
	return vn, c
}

// exchangeGuards fills every block's guard cells from its neighbors'
// interiors, with outflow (copy) conditions at the domain boundary.
func (s *Sim) exchangeGuards() {
	s.parallelBlocks(func(bi int) {
		by, bx := bi/s.nbx, bi%s.nbx
		b := s.blocks[bi]
		for iy := 0; iy < totH; iy++ {
			for ix := 0; ix < totW; ix++ {
				if ix >= NGuard && ix < NGuard+NXB && iy >= NGuard && iy < NGuard+NYB {
					continue // interior
				}
				// Global interior-cell coordinates of this guard cell.
				gx := bx*NXB + ix - NGuard
				gy := by*NYB + iy - NGuard
				// Clamp to the domain (outflow boundary).
				if gx < 0 {
					gx = 0
				}
				if gx >= s.nbx*NXB {
					gx = s.nbx*NXB - 1
				}
				if gy < 0 {
					gy = 0
				}
				if gy >= s.nby*NYB {
					gy = s.nby*NYB - 1
				}
				src := s.blocks[(gy/NYB)*s.nbx+gx/NXB]
				sidx := cellIdx(gx%NXB+NGuard, gy%NYB+NGuard)
				didx := cellIdx(ix, iy)
				for v := 0; v < nQ; v++ {
					b.q[v][didx] = src.q[v][sidx]
				}
			}
		}
	})
}

// parallelBlocks runs fn(blockIndex) for every block across the
// configured worker pool.
func (s *Sim) parallelBlocks(fn func(int)) {
	workers := s.cfg.Workers
	if workers > len(s.blocks) {
		workers = len(s.blocks)
	}
	if workers <= 1 {
		for i := range s.blocks {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(s.blocks))
	for i := range s.blocks {
		ch <- i
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Snapshot is one checkpoint: the 10 FLASH variables over all interior
// cells, flattened block by block (matching how FLASH writes its
// checkpoint file with collective calls per variable).
type Snapshot struct {
	Step int
	Time float64
	// Vars maps variable name to its flat value array.
	Vars map[string][]float64
}

// Checkpoint captures the current state as a Snapshot.
func (s *Sim) Checkpoint() *Snapshot {
	n := s.Cells()
	snap := &Snapshot{Step: s.step, Time: s.time, Vars: make(map[string][]float64, len(Variables))}
	for _, v := range Variables {
		snap.Vars[v] = make([]float64, n)
	}
	pos := 0
	for bi := range s.blocks {
		b := s.blocks[bi]
		for iy := NGuard; iy < NGuard+NYB; iy++ {
			for ix := NGuard; ix < NGuard+NXB; ix++ {
				idx := cellIdx(ix, iy)
				rho := b.q[qRho][idx]
				u := b.q[qMx][idx] / rho
				v := b.q[qMy][idx] / rho
				w := b.q[qMz][idx] / rho
				etot := b.q[qEner][idx] / rho // specific total energy
				eint := etot - 0.5*(u*u+v*v+w*w)
				p := (Gamma - 1) * rho * eint

				snap.Vars["dens"][pos] = rho
				snap.Vars["eint"][pos] = eint
				snap.Vars["ener"][pos] = etot
				snap.Vars["gamc"][pos] = Gamma
				snap.Vars["game"][pos] = Gamma
				snap.Vars["pres"][pos] = p
				snap.Vars["temp"][pos] = p / (rho * RGas)
				snap.Vars["velx"][pos] = u
				snap.Vars["vely"][pos] = v
				snap.Vars["velz"][pos] = w
				pos++
			}
		}
	}
	return snap
}

// Restart overwrites the simulation state from a snapshot (which may
// contain approximated values reconstructed from NUMARCK checkpoints,
// §III-G). The snapshot must describe the same mesh.
func (s *Sim) Restart(snap *Snapshot) error {
	n := s.Cells()
	for _, v := range []string{"dens", "velx", "vely", "velz", "pres"} {
		arr, ok := snap.Vars[v]
		if !ok {
			return fmt.Errorf("flash: restart snapshot missing variable %q", v)
		}
		if len(arr) != n {
			return fmt.Errorf("flash: restart variable %q has %d cells, mesh has %d", v, len(arr), n)
		}
	}
	pos := 0
	for bi := range s.blocks {
		b := s.blocks[bi]
		for iy := NGuard; iy < NGuard+NYB; iy++ {
			for ix := NGuard; ix < NGuard+NXB; ix++ {
				idx := cellIdx(ix, iy)
				rho := snap.Vars["dens"][pos]
				u := snap.Vars["velx"][pos]
				v := snap.Vars["vely"][pos]
				w := snap.Vars["velz"][pos]
				p := snap.Vars["pres"][pos]
				if rho <= 0 || math.IsNaN(rho) {
					return fmt.Errorf("flash: restart density %v at cell %d", rho, pos)
				}
				if p <= 0 || math.IsNaN(p) {
					return fmt.Errorf("flash: restart pressure %v at cell %d", p, pos)
				}
				b.q[qRho][idx] = rho
				b.q[qMx][idx] = rho * u
				b.q[qMy][idx] = rho * v
				b.q[qMz][idx] = rho * w
				b.q[qEner][idx] = p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
				pos++
			}
		}
	}
	s.step = snap.Step
	s.time = snap.Time
	s.exchangeGuards()
	return nil
}
