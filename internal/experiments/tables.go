package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"numarck/internal/baseline/bsplines"
	"numarck/internal/baseline/isabela"
	"numarck/internal/core"
	"numarck/internal/stats"
)

// TableConfig carries the paper's settings for Tables I and II
// (§III-F): E = 0.5 %, clustering; B = 9 / W₀ = 512 for CMIP5 data and
// B = 8 / W₀ = 256 for FLASH data; P_I = 30; P_S = 0.8·n.
type TableConfig struct {
	Iterations int
	Seed       int64
}

// TableRow holds one dataset's results for both tables.
type TableRow struct {
	Dataset string
	// Table I: compression ratios (percent saved).
	RBSplines, RISABELA, RNUMARCK MeanStd
	// Table II: Pearson ρ.
	RhoBSplines, RhoISABELA, RhoNUMARCK MeanStd
	// Table II: RMSE ξ.
	XiBSplines, XiISABELA, XiNUMARCK MeanStd
}

// TablesResult reproduces Tables I and II together (they share all the
// compression work).
type TablesResult struct {
	Cfg  TableConfig
	Rows []TableRow
}

// RunTables compresses every dataset with the three methods and
// collects ratio and accuracy statistics across iterations.
func RunTables(cfg TableConfig) (*TablesResult, error) {
	if cfg.Iterations < 2 {
		return nil, fmt.Errorf("experiments: tables need >= 2 iterations")
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	res := &TablesResult{Cfg: cfg}

	flashSnaps, err := FLASHRunCached(cfg.Iterations, 3, cfg.Seed)
	if err != nil {
		return nil, err
	}

	for _, ds := range TableDatasets {
		var series [][]float64
		indexBits := 8
		window := 256
		if ds.CMIP5 {
			indexBits = 9
			window = 512
			series, err = CMIP5Series(ds.Name, cfg.Iterations, cfg.Seed)
			if err != nil {
				return nil, err
			}
		} else {
			series, err = FLASHSeries(flashSnaps, ds.Name)
			if err != nil {
				return nil, err
			}
		}
		row, err := runTableDataset(ds.Name, series, indexBits, window)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runTableDataset(name string, series [][]float64, indexBits, window int) (*TableRow, error) {
	opt := core.Options{ErrorBound: 0.005, IndexBits: indexBits, Strategy: core.Clustering}
	row := &TableRow{Dataset: name}
	var rBS, rISA, rNMK []float64
	var rhoBS, rhoISA, rhoNMK []float64
	var xiBS, xiISA, xiNMK []float64

	for i := 1; i < len(series); i++ {
		cur := series[i]

		// B-Splines baseline on the iteration's raw values.
		bs, err := bsplines.Compress(cur, bsplines.DefaultControlFraction)
		if err != nil {
			return nil, fmt.Errorf("%s iter %d bsplines: %w", name, i, err)
		}
		bsRec := bs.Decompress()
		rBS = append(rBS, bs.CompressionRatio())
		if err := appendAccuracy(&rhoBS, &xiBS, cur, bsRec); err != nil {
			return nil, err
		}

		// ISABELA baseline.
		isa, err := isabela.Compress(cur, window, isabela.DefaultCoefficients)
		if err != nil {
			return nil, fmt.Errorf("%s iter %d isabela: %w", name, i, err)
		}
		isaRec, err := isa.Decompress()
		if err != nil {
			return nil, err
		}
		rISA = append(rISA, isa.CompressionRatio())
		if err := appendAccuracy(&rhoISA, &xiISA, cur, isaRec); err != nil {
			return nil, err
		}

		// NUMARCK on the transition.
		enc, err := core.Encode(series[i-1], cur, opt)
		if err != nil {
			return nil, fmt.Errorf("%s iter %d numarck: %w", name, i, err)
		}
		nmkRec, err := enc.Decode(series[i-1])
		if err != nil {
			return nil, err
		}
		cr, err := enc.CompressionRatio()
		if err != nil {
			return nil, err
		}
		rNMK = append(rNMK, cr)
		if err := appendAccuracy(&rhoNMK, &xiNMK, cur, nmkRec); err != nil {
			return nil, err
		}
	}

	row.RBSplines = NewMeanStd(rBS)
	row.RISABELA = NewMeanStd(rISA)
	row.RNUMARCK = NewMeanStd(rNMK)
	row.RhoBSplines = NewMeanStd(rhoBS)
	row.RhoISABELA = NewMeanStd(rhoISA)
	row.RhoNUMARCK = NewMeanStd(rhoNMK)
	row.XiBSplines = NewMeanStd(xiBS)
	row.XiISABELA = NewMeanStd(xiISA)
	row.XiNUMARCK = NewMeanStd(xiNMK)
	return row, nil
}

func appendAccuracy(rhos, xis *[]float64, orig, rec []float64) error {
	rho, err := stats.Pearson(orig, rec)
	if err != nil {
		return err
	}
	xi, err := stats.RMSE(orig, rec)
	if err != nil {
		return err
	}
	*rhos = append(*rhos, rho)
	*xis = append(*xis, xi)
	return nil
}

// WriteTable1 renders the compression-ratio comparison.
func (r *TablesResult) WriteTable1(w io.Writer) error {
	fmt.Fprintf(w, "Table I: compression ratio (%% saved), %d iterations\n", r.Cfg.Iterations)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tB-Splines\tISABELA\tNUMARCK")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\n", row.Dataset, row.RBSplines, row.RISABELA, row.RNUMARCK)
	}
	return tw.Flush()
}

// WriteTable2 renders the accuracy comparison.
func (r *TablesResult) WriteTable2(w io.Writer) error {
	fmt.Fprintf(w, "Table II: accuracy (Pearson rho | RMSE xi), %d iterations\n", r.Cfg.Iterations)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\trho B-Spl\trho ISA\trho NMK\txi B-Spl\txi ISA\txi NMK")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %s\t%.4f\t%.4f\t%.4f\t%.4g\t%.4g\t%.4g\n",
			row.Dataset,
			row.RhoBSplines.Mean, row.RhoISABELA.Mean, row.RhoNUMARCK.Mean,
			row.XiBSplines.Mean, row.XiISABELA.Mean, row.XiNUMARCK.Mean)
	}
	return tw.Flush()
}
