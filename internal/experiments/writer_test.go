package experiments

import (
	"bytes"
	"errors"
	"testing"
)

// failWriter fails every Write, so any renderer that flushes through it
// must surface the error instead of silently truncating output.
type failWriter struct{}

var errSink = errors.New("sink failed")

func (failWriter) Write(p []byte) (int, error) { return 0, errSink }

// TestWriteTextPropagatesWriterError pins the renderer contract
// introduced when the Write* family gained error returns: a failing
// destination must be reported, not dropped on the tabwriter floor.
func TestWriteTextPropagatesWriterError(t *testing.T) {
	res := &DistResult{
		Variable: "mc",
		RawBytes: 800,
		Rows:     []DistRow{{Ranks: 4, BytesMoved: 128, TableEntries: 256}},
	}
	if err := res.WriteText(failWriter{}); err == nil {
		t.Fatal("WriteText on a failing writer returned nil error")
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("WriteText on a healthy writer: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("WriteText wrote nothing")
	}
}
