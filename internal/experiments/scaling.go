package experiments

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"numarck/internal/core"
	"numarck/internal/sim/climate"
)

// ScalingRow is one worker count's timing.
type ScalingRow struct {
	Workers  int
	Elapsed  time.Duration
	Speedup  float64
	MBPerSec float64
}

// ScalingResult measures shared-memory strong scaling of the encoder —
// the "more computations locally" half of the paper's exascale pitch
// (§I Q4): ratio computation, k-means assignment, and the index
// assignment pass all decompose over points. Speedup is bounded by the
// host's CPU count (reported in the output): on a single-core machine
// the experiment degenerates to a correctness check of the worker
// plumbing.
type ScalingResult struct {
	Points int
	CPUs   int
	Rows   []ScalingRow
}

// RunScalingExperiment encodes a fixed 1M-point workload (abs550aer
// values tiled) at increasing worker counts.
func RunScalingExperiment(seed int64) (*ScalingResult, error) {
	gen, err := climate.NewGenerator("abs550aer", seed)
	if err != nil {
		return nil, err
	}
	base0 := gen.Iteration(3)
	base1 := gen.Iteration(4)
	const copies = 80 // ~1.04M points
	prev := make([]float64, 0, copies*len(base0))
	cur := make([]float64, 0, copies*len(base1))
	for c := 0; c < copies; c++ {
		prev = append(prev, base0...)
		cur = append(cur, base1...)
	}

	res := &ScalingResult{Points: len(prev), CPUs: runtime.NumCPU()}
	var baseline time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering, Workers: workers}
		start := time.Now()
		if _, err := core.Encode(prev, cur, opt); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if workers == 1 {
			baseline = elapsed
		}
		res.Rows = append(res.Rows, ScalingRow{
			Workers:  workers,
			Elapsed:  elapsed,
			Speedup:  float64(baseline) / float64(elapsed),
			MBPerSec: float64(8*len(prev)) / 1e6 / elapsed.Seconds(),
		})
	}
	return res, nil
}

// WriteText renders the scaling table.
func (r *ScalingResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Scaling: clustering encode of %d points vs worker count (%d CPU(s) available)\n", r.Points, r.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  workers\telapsed\tspeedup\tthroughput")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %d\t%v\t%.2fx\t%.1f MB/s\n", row.Workers, row.Elapsed.Round(time.Millisecond), row.Speedup, row.MBPerSec)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.CPUs == 1 {
		fmt.Fprintln(w, "  note: single-CPU host — speedup is capped at 1x by hardware, not by the decomposition")
	}
	return nil
}

// ---------------------------------------------------------------------
// Strategy-extension comparison: the paper's three strategies plus the
// equal-frequency extension, on the two hardest variables.

// StrategyExtRow is one (variable, strategy) outcome.
type StrategyExtRow struct {
	Variable string
	Strategy core.Strategy
	AvgGamma float64
	AvgRatio float64
}

// StrategyExtResult compares all four strategies.
type StrategyExtResult struct {
	Rows []StrategyExtRow
}

// RunStrategyExtension sweeps the four strategies over mc and
// abs550aer (E=0.1 %, B=8).
func RunStrategyExtension(iters int, seed int64) (*StrategyExtResult, error) {
	res := &StrategyExtResult{}
	all := append(append([]core.Strategy{}, core.Strategies...), core.EqualFrequency)
	for _, v := range []string{"mc", "abs550aer"} {
		series, err := CMIP5Series(v, iters, seed)
		if err != nil {
			return nil, err
		}
		for _, s := range all {
			r, err := RunSeries(v, series, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, StrategyExtRow{
				Variable: v,
				Strategy: s,
				AvgGamma: r.AvgGamma(),
				AvgRatio: r.AvgCompRatio(),
			})
		}
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *StrategyExtResult) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Extension: equal-frequency (quantile) binning vs the paper's three strategies (E=0.1%, B=8)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  variable\tstrategy\tavg incompressible\tavg comp ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %s\t%s\t%.2f%%\t%.2f%%\n", row.Variable, row.Strategy, row.AvgGamma*100, row.AvgRatio)
	}
	return tw.Flush()
}
