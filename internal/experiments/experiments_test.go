package experiments

import (
	"bytes"
	"strings"
	"testing"

	"numarck/internal/core"
)

const testSeed = DefaultSeed

func TestCMIP5Series(t *testing.T) {
	series, err := CMIP5Series("rlus", 3, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 || len(series[0]) != 12960 {
		t.Fatalf("series shape %dx%d", len(series), len(series[0]))
	}
	if _, err := CMIP5Series("nope", 3, testSeed); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestFLASHRunAndSeries(t *testing.T) {
	snaps, err := FLASHRunCached(3, 2, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	series, err := FLASHSeries(snaps, "dens")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series len %d", len(series))
	}
	if _, err := FLASHSeries(snaps, "bogus"); err == nil {
		t.Error("bogus variable accepted")
	}
	if _, err := FLASHRun(0, 1, 1); err == nil {
		t.Error("zero checkpoints accepted")
	}
	// Cache returns the identical snapshots.
	again, err := FLASHRunCached(3, 2, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0].Vars != &snaps[0].Vars {
		// Compare one value; pointer identity of maps isn't assertable
		// directly, but the cached slice must be the same backing data.
		if again[0].Vars["dens"][0] != snaps[0].Vars["dens"][0] {
			t.Error("cache returned different data")
		}
	}
}

func TestRunSeriesMetrics(t *testing.T) {
	series, err := CMIP5Series("rlus", 4, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSeries("rlus", series, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 3 {
		t.Fatalf("%d iteration metrics", len(res.Iters))
	}
	for _, m := range res.Iters {
		if m.Gamma < 0 || m.Gamma > 1 {
			t.Errorf("gamma %v", m.Gamma)
		}
		if m.MaxErr > 0.001+1e-12 {
			t.Errorf("max err %v exceeds bound", m.MaxErr)
		}
		if m.MeanErr > m.MaxErr+1e-15 {
			t.Errorf("mean err %v > max err %v", m.MeanErr, m.MaxErr)
		}
	}
	if res.AvgMeanErr() > 0.001 {
		t.Errorf("avg mean err %v", res.AvgMeanErr())
	}
	if _, err := RunSeries("x", series[:1], core.Options{ErrorBound: 0.001, IndexBits: 8}); err == nil {
		t.Error("single-iteration series accepted")
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig1(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating fact: >75 % of rlus changes below 0.5 %.
	if res.FracBelow["0.5%"] < 0.75 {
		t.Errorf("only %.1f%% of changes below 0.5%%", res.FracBelow["0.5%"]*100)
	}
	// Change distribution concentrated near zero relative to values.
	if res.Ratios.Std > 0.05 {
		t.Errorf("ratio std %v suspiciously wide", res.Ratios.Std)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	if !strings.Contains(buf.String(), "rlus") {
		t.Error("WriteText missing variable name")
	}
}

func TestFig3BinHistograms(t *testing.T) {
	res, err := RunFig3(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("%d strategies", len(res.Strategies))
	}
	for _, s := range res.Strategies {
		if s.TotalBins != 255 {
			t.Errorf("%v: total bins %d", s.Strategy, s.TotalBins)
		}
		if s.OccupiedBins < 1 || s.OccupiedBins > 255 {
			t.Errorf("%v: occupied %d", s.Strategy, s.OccupiedBins)
		}
		sum := 0
		for _, c := range s.BinCounts {
			sum += c
		}
		if sum == 0 {
			t.Errorf("%v: empty bin histogram", s.Strategy)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	if !strings.Contains(buf.String(), "clustering") {
		t.Error("WriteText missing strategies")
	}
}

func TestFig4ShapesMatchPaper(t *testing.T) {
	res, err := RunFig4(6, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 6*3 {
		t.Fatalf("%d results", len(res.Results))
	}
	byKey := map[string]*SeriesResult{}
	for _, r := range res.Results {
		byKey[r.Variable+"/"+r.Opt.Strategy.String()] = r
	}
	// Paper claims (§III-C): clustering best incompressible ratio on
	// every dataset; mean error rates < 0.025 % for all strategies.
	for _, v := range CMIP5Variables() {
		cl := byKey[v+"/clustering"].AvgGamma()
		ew := byKey[v+"/equal-width"].AvgGamma()
		ls := byKey[v+"/log-scale"].AvgGamma()
		if cl > ew+0.01 {
			t.Errorf("%s: clustering gamma %.3f worse than equal-width %.3f", v, cl, ew)
		}
		if cl > ls+0.01 {
			t.Errorf("%s: clustering gamma %.3f worse than log-scale %.3f", v, cl, ls)
		}
	}
	for _, r := range res.Results {
		if r.AvgMeanErr() > 0.0005 {
			t.Errorf("%s/%v: mean err %.5f%% above paper's <0.05%%", r.Variable, r.Opt.Strategy, r.AvgMeanErr()*100)
		}
	}
	// abs550aer must be among the hardest for clustering (paper §III-E).
	hard := byKey["abs550aer/clustering"].AvgGamma()
	easy := byKey["rlus/clustering"].AvgGamma()
	if hard < easy {
		t.Errorf("abs550aer gamma %.3f not harder than rlus %.3f", hard, easy)
	}
}

func TestFig5ShapesMatchPaper(t *testing.T) {
	res, err := RunFig5(6, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 10*3 {
		t.Fatalf("%d results", len(res.Results))
	}
	// Paper: clustering achieves < 7 % incompressible on all FLASH
	// data, and FLASH is easier than CMIP5.
	for _, r := range res.Results {
		if r.Opt.Strategy == core.Clustering && r.AvgGamma() > 0.07 {
			t.Errorf("%s: clustering gamma %.3f above paper's 7%%", r.Variable, r.AvgGamma())
		}
		if r.AvgMeanErr() > 0.0005 {
			t.Errorf("%s/%v: mean err %.5f%%", r.Variable, r.Opt.Strategy, r.AvgMeanErr()*100)
		}
	}
}

func TestFig6PrecisionShape(t *testing.T) {
	res, err := RunFig6(8, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Paper: incompressible ratio collapses as B grows 8 -> 10.
	if !(res.Rows[0].AvgGamma >= res.Rows[1].AvgGamma && res.Rows[1].AvgGamma >= res.Rows[2].AvgGamma-1e-9) {
		t.Errorf("gamma not decreasing in B: %v %v %v",
			res.Rows[0].AvgGamma, res.Rows[1].AvgGamma, res.Rows[2].AvgGamma)
	}
	if res.Rows[0].AvgGamma < 0.05 {
		t.Errorf("B=8 gamma %.3f too small to show the paper's effect", res.Rows[0].AvgGamma)
	}
	// B=9 must improve compression over B=8 (the paper's 30 % jump).
	if res.Rows[1].AvgCompRatio < res.Rows[0].AvgCompRatio {
		t.Errorf("B=9 ratio %.1f not above B=8 %.1f", res.Rows[1].AvgCompRatio, res.Rows[0].AvgCompRatio)
	}
}

func TestFig7ErrorBoundShape(t *testing.T) {
	res, err := RunFig7(8, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Paper: gamma decreasing, compression increasing in E; mean error
	// grows but stays well under E.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].AvgGamma > res.Rows[i-1].AvgGamma+0.01 {
			t.Errorf("gamma increased at E=%v", res.Rows[i].ErrorBound)
		}
		if res.Rows[i].AvgCompRatio < res.Rows[i-1].AvgCompRatio-1 {
			t.Errorf("compression dropped at E=%v", res.Rows[i].ErrorBound)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.AvgGamma < 0.25 {
		t.Errorf("E=0.1%% gamma %.3f too small (paper >40%%)", first.AvgGamma)
	}
	if last.AvgGamma > 0.10 {
		t.Errorf("E=0.5%% gamma %.3f too large (paper <10%%)", last.AvgGamma)
	}
	for _, row := range res.Rows {
		if row.AvgMeanErr > row.ErrorBound/2 {
			t.Errorf("E=%v: mean err %v not well under the bound", row.ErrorBound, row.AvgMeanErr)
		}
	}
}

func TestTablesShapesMatchPaper(t *testing.T) {
	res, err := RunTables(TableConfig{Iterations: 4, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	nmkWins := 0
	for _, row := range res.Rows {
		// B-Splines pinned at 20 % by construction.
		if row.RBSplines.Mean < 19.9 || row.RBSplines.Mean > 20.1 {
			t.Errorf("%s: B-Splines ratio %v, want ~20", row.Dataset, row.RBSplines.Mean)
		}
		// ISABELA near its analytic 80.078/75.781 (partial tail
		// windows shave a little off on the CMIP5 grid).
		if row.RISABELA.Mean < 74 || row.RISABELA.Mean > 81 {
			t.Errorf("%s: ISABELA ratio %v", row.Dataset, row.RISABELA.Mean)
		}
		if row.RNUMARCK.Mean > row.RISABELA.Mean {
			nmkWins++
		}
		// Accuracy: correlations near 1 for NUMARCK, RMSE finite.
		if row.RhoNUMARCK.Mean < 0.99 {
			t.Errorf("%s: NUMARCK rho %v", row.Dataset, row.RhoNUMARCK.Mean)
		}
	}
	// Paper: NUMARCK beats ISABELA's ratio on 9 of 10 datasets; demand
	// a clear majority on the synthetic substitute.
	if nmkWins < 7 {
		t.Errorf("NUMARCK beats ISABELA on only %d/10 datasets", nmkWins)
	}
	// NUMARCK's RMSE beats B-Splines' on a clear majority (paper: an
	// order of magnitude on most).
	xiWins := 0
	for _, row := range res.Rows {
		if row.XiNUMARCK.Mean <= row.XiBSplines.Mean {
			xiWins++
		}
	}
	if xiWins < 7 {
		t.Errorf("NUMARCK xi better than B-Splines on only %d/10", xiWins)
	}
	var buf bytes.Buffer
	if err := res.WriteTable1(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	if err := res.WriteTable2(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "rlus") || !strings.Contains(out, "eint") {
		t.Error("table output missing datasets")
	}
}

func TestFig8RestartShape(t *testing.T) {
	res, err := RunFig8(Fig8Config{
		Distances:           []int{2, 4},
		ContinueCheckpoints: 3,
		Seed:                testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("%d strategies", len(res.Strategies))
	}
	for _, s := range res.Strategies {
		if len(s.Runs) != 2 {
			t.Fatalf("%v: %d runs", s.Strategy, len(s.Runs))
		}
		// Paper: farther restart point => more accumulated error.
		near := s.Runs[0].Steps[len(s.Runs[0].Steps)-1]
		far := s.Runs[1].Steps[len(s.Runs[1].Steps)-1]
		var nearSum, farSum float64
		for _, v := range res.Variables {
			nearSum += near.MeanErr[v]
			farSum += far.MeanErr[v]
		}
		if farSum < nearSum*0.8 {
			t.Errorf("%v: distance-4 error %v not above distance-2 %v", s.Strategy, farSum, nearSum)
		}
		// The simulation must stay finite: errors bounded.
		for _, run := range s.Runs {
			for _, step := range run.Steps {
				for v, e := range step.MaxErr {
					if e > 1 {
						t.Errorf("%v d=%d ckpt %d %s: max err %v implausible",
							s.Strategy, run.Distance, step.CheckpointIndex, v, e)
					}
				}
			}
		}
	}
	// temp and eint must track each other exactly: the gamma-law EOS
	// makes them proportional, the analogue of the paper's pres/temp
	// observation (§III-G, "the computation applied to both is
	// actually the same").
	for _, s := range res.Strategies {
		for _, run := range s.Runs {
			for _, step := range run.Steps {
				ev, tv := step.MeanErr["eint"], step.MeanErr["temp"]
				if ev == 0 && tv == 0 {
					continue
				}
				ratio := ev / tv
				if ratio < 0.99 || ratio > 1.01 {
					t.Errorf("eint/temp error ratio %v at ckpt %d", ratio, step.CheckpointIndex)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	if err := res.WriteSummary(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	if !strings.Contains(buf.String(), "restart") {
		t.Error("Fig8 output missing header")
	}
}

func TestFig8RejectsBadDistances(t *testing.T) {
	if _, err := RunFig8(Fig8Config{Distances: []int{0}}); err == nil {
		t.Error("zero distance accepted")
	}
	if _, err := RunFig8(Fig8Config{Distances: []int{-2}}); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestSeedingAblationShowsPaperEffect(t *testing.T) {
	res, err := RunSeedingAblation(4, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	var histAvg, uniAvg float64
	for _, row := range res.Rows {
		histAvg += row.GammaHistogram
		uniAvg += row.GammaUniform
	}
	histAvg /= float64(len(res.Rows))
	uniAvg /= float64(len(res.Rows))
	// Paper: histogram seeding overcomes initialization sensitivity —
	// it must not be worse, and on hard data should be clearly better.
	if histAvg > uniAvg+0.02 {
		t.Errorf("histogram seeding %.3f worse than uniform %.3f", histAvg, uniAvg)
	}
}

func TestZeroIndexAblationRuns(t *testing.T) {
	res, err := RunZeroIndexAblation(3, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	if !strings.Contains(buf.String(), "reserved") {
		t.Error("ablation output incomplete")
	}
}

func TestDistributedAblationShape(t *testing.T) {
	res, err := RunDistributedAblation(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Mode.String() == "local-tables" && row.BytesMoved != 0 {
			t.Errorf("local mode at %d ranks moved %d bytes", row.Ranks, row.BytesMoved)
		}
		if row.Mode.String() == "global-table" && row.Ranks > 1 {
			if row.BytesMoved == 0 {
				t.Errorf("global mode at %d ranks moved nothing", row.Ranks)
			}
			if row.TableEntries != 255 {
				t.Errorf("global mode stores %d table entries", row.TableEntries)
			}
		}
	}
}

func TestLosslessComparisonShape(t *testing.T) {
	res, err := RunLosslessComparison(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	best, nmk := res.Best()
	// The paper's §IV point: error-bounded NUMARCK clearly beats the
	// best lossless method on average.
	if nmk < best+10 {
		t.Errorf("NUMARCK %.1f%% not clearly above best lossless %.1f%%", nmk, best)
	}
	for _, row := range res.Rows {
		// Lossless savings must be sane percentages.
		for name, v := range map[string]float64{"fpc": row.FPC, "xor": row.XorRLE, "xorfpc": row.XorFPC} {
			if v < -10 || v > 100 {
				t.Errorf("%s/%s saving %v implausible", row.Dataset, name, v)
			}
		}
	}
}

func TestTableReuseAblation(t *testing.T) {
	res, err := RunTableReuseAblation(6, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Reuse can never beat fresh by construction of the bound
		// check... actually it can by luck, but it must stay sane.
		if row.GammaReuse < 0 || row.GammaReuse > 1 {
			t.Errorf("iteration %d: reuse gamma %v", row.Iteration, row.GammaReuse)
		}
		// On the slowly evolving rlus, reusing yesterday's table must
		// not blow up: within a few percent of fresh.
		if row.GammaReuse > row.GammaFresh+0.10 {
			t.Errorf("iteration %d: reuse gamma %.3f far above fresh %.3f — distributions should evolve slowly",
				row.Iteration, row.GammaReuse, row.GammaFresh)
		}
	}
}

func TestFPCPostPassShrinksPayload(t *testing.T) {
	res, err := RunFPCPostPass(3, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.EncodedBytes >= row.RawBytes {
			t.Errorf("iteration %d: encoded %d not below raw %d", row.Iteration, row.EncodedBytes, row.RawBytes)
		}
		if row.PostFPCBytes > row.EncodedBytes {
			t.Errorf("iteration %d: FPC pass grew payload %d -> %d", row.Iteration, row.EncodedBytes, row.PostFPCBytes)
		}
	}
}

func TestStrategyExtensionShape(t *testing.T) {
	res, err := RunStrategyExtension(4, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Equal-frequency must land in the same league as clustering on
	// the hard variables (both are mass-adaptive).
	byKey := map[string]float64{}
	for _, row := range res.Rows {
		byKey[row.Variable+"/"+row.Strategy.String()] = row.AvgGamma
	}
	for _, v := range []string{"mc", "abs550aer"} {
		ef := byKey[v+"/equal-frequency"]
		ew := byKey[v+"/equal-width"]
		if ef >= ew {
			t.Errorf("%s: equal-frequency gamma %.3f not below equal-width %.3f", v, ef, ew)
		}
	}
}

func TestScalingExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := RunScalingExperiment(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0].Workers != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.Elapsed <= 0 || row.MBPerSec <= 0 {
			t.Errorf("workers %d: %+v", row.Workers, row)
		}
	}
}
