package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestCodecBenchEnvHonesty runs a tiny codec bench and checks the
// environment fields tell the truth: the recorded CPU counts are the
// host's real ones, and every decode row whose worker count exceeds
// GOMAXPROCS is loudly marked env-limited in both the JSON fields and
// the text rendering.
func TestCodecBenchEnvHonesty(t *testing.T) {
	res, err := RunCodecBench(CodecBenchConfig{Points: 4000, Iters: 1, DecodeWorkers: []int{1, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCPU != runtime.NumCPU() {
		t.Errorf("num_cpu = %d, host has %d", res.NumCPU, runtime.NumCPU())
	}
	if res.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, runtime reports %d", res.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if err := res.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	sawLimited := false
	for _, row := range res.Rows {
		for _, d := range row.DecodeChunked {
			want := d.Workers > res.GoMaxProcs
			if d.EnvLimited != want {
				t.Errorf("%s decode@%dw: env_limited = %v, want %v (GOMAXPROCS %d)", row.Strategy, d.Workers, d.EnvLimited, want, res.GoMaxProcs)
			}
			sawLimited = sawLimited || d.EnvLimited
		}
	}
	// 64 workers exceeds GOMAXPROCS on any plausible CI host; when it
	// does, the note and the text rendering must both flag it.
	if sawLimited {
		if res.EnvNote == "" {
			t.Error("env-limited rows but no env_note")
		}
		var txt bytes.Buffer
		if err := res.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(txt.String(), "ENV-LIMITED") {
			t.Error("text rendering does not mark env-limited rows")
		}
	}

	// A row claiming full honesty while over-subscribed must be refused.
	bad := *res
	bad.Rows = append([]CodecStrategyTiming(nil), res.Rows...)
	if sawLimited {
		bad.Rows[0].DecodeChunked = append([]CodecDecodeTiming(nil), res.Rows[0].DecodeChunked...)
		for i := range bad.Rows[0].DecodeChunked {
			bad.Rows[0].DecodeChunked[i].EnvLimited = false
		}
		if err := bad.Validate(); err == nil {
			t.Error("Validate accepted an over-subscribed row not marked env_limited")
		}
	}
	bad2 := *res
	bad2.GoMaxProcs = 0
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted gomaxprocs=0")
	}
}
