package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiffCodecBench renders a diff of two synthetic results and checks
// the deltas, the env-limited star, and the environment warning.
func TestDiffCodecBench(t *testing.T) {
	old := &CodecBenchResult{
		Points: 1000, ChunkPoints: 100, Iters: 1, NumCPU: 1, GoMaxProcs: 1,
		Rows: []CodecStrategyTiming{{
			Strategy:         "equal-width",
			EncodeInMemoryNs: 2_000_000,
			EncodeStreamNs:   4_000_000,
			DecodeInMemoryNs: 1_000_000,
			DecodeChunked: []CodecDecodeTiming{
				{Workers: 1, Ns: 3_000_000, Speedup: 1},
				{Workers: 8, Ns: 3_000_000, Speedup: 1, EnvLimited: true},
			},
			EncodedBytes:       500,
			EncodeStreamStages: map[string]int64{"ratio": 1_000_000, "table": 2_000_000},
		}, {Strategy: "log-scale"}},
	}
	new := &CodecBenchResult{
		Points: 1000, ChunkPoints: 100, Iters: 1, NumCPU: 4, GoMaxProcs: 4,
		Rows: []CodecStrategyTiming{{
			Strategy:         "equal-width",
			EncodeInMemoryNs: 2_000_000,
			EncodeStreamNs:   2_000_000,
			DecodeInMemoryNs: 1_000_000,
			DecodeChunked: []CodecDecodeTiming{
				{Workers: 1, Ns: 3_000_000, Speedup: 1},
				{Workers: 8, Ns: 1_000_000, Speedup: 3},
			},
			EncodedBytes:       500,
			EncodeStreamStages: map[string]int64{"ratio": 1_000_000, "table": 500_000},
		}, {Strategy: "clustering"}},
	}
	var buf bytes.Buffer
	if err := DiffCodecBench(old, new, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"environments differ",
		"encode_stream",
		"-50.0%", // stream halved, table stage halved
		"decode v2@8w*",
		"log-scale: only in old file",
		"clustering: only in new file",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestLoadCodecBenchRoundTrip writes a result as JSON and loads it
// back, covering the path the bench-compare make target uses.
func TestLoadCodecBenchRoundTrip(t *testing.T) {
	res := &CodecBenchResult{Points: 10, ChunkPoints: 5, Iters: 1, NumCPU: 1, GoMaxProcs: 1, EnvNote: "n"}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCodecBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Points != 10 || got.EnvNote != "n" {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if _, err := LoadCodecBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
