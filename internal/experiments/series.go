package experiments

import (
	"fmt"

	"numarck/internal/core"
	"numarck/internal/stats"
)

// IterMetrics are the per-iteration metrics the paper plots in
// Figs. 4-7.
type IterMetrics struct {
	Iteration int
	// Gamma is the incompressible ratio (fraction).
	Gamma float64
	// MeanErr and MaxErr are the mean and maximum |approximated −
	// true| change-ratio error (fractions; ×100 for the paper's %).
	MeanErr float64
	MaxErr  float64
	// CompRatio is the paper's Eq. 3 compression ratio in percent.
	CompRatio float64
}

// SeriesResult is the outcome of encoding every consecutive pair of a
// variable's iteration series.
type SeriesResult struct {
	Variable string
	Opt      core.Options
	Iters    []IterMetrics
}

// RunSeries encodes series[i-1] → series[i] for every i >= 1 under opt
// and collects per-iteration metrics. Ratios are always computed
// against the true previous iteration, matching in-situ checkpointing.
func RunSeries(variable string, series [][]float64, opt core.Options) (*SeriesResult, error) {
	if len(series) < 2 {
		return nil, fmt.Errorf("experiments: series %q needs >= 2 iterations, have %d", variable, len(series))
	}
	res := &SeriesResult{Variable: variable, Opt: opt}
	for i := 1; i < len(series); i++ {
		enc, err := core.Encode(series[i-1], series[i], opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s iteration %d: %w", variable, i, err)
		}
		cr, err := enc.CompressionRatio()
		if err != nil {
			return nil, err
		}
		res.Iters = append(res.Iters, IterMetrics{
			Iteration: i,
			Gamma:     enc.Gamma(),
			MeanErr:   enc.MeanErrorRate(),
			MaxErr:    enc.MaxErrorRate(),
			CompRatio: cr,
		})
	}
	return res, nil
}

// AvgGamma returns the mean incompressible ratio across iterations.
func (r *SeriesResult) AvgGamma() float64 {
	return stats.Mean(r.collect(func(m IterMetrics) float64 { return m.Gamma }))
}

// AvgMeanErr returns the mean of the per-iteration mean error rates.
func (r *SeriesResult) AvgMeanErr() float64 {
	return stats.Mean(r.collect(func(m IterMetrics) float64 { return m.MeanErr }))
}

// AvgCompRatio returns the mean Eq. 3 compression ratio in percent.
func (r *SeriesResult) AvgCompRatio() float64 {
	return stats.Mean(r.collect(func(m IterMetrics) float64 { return m.CompRatio }))
}

// MaxMaxErr returns the worst per-point error rate over all iterations.
func (r *SeriesResult) MaxMaxErr() float64 {
	var m float64
	for _, it := range r.Iters {
		if it.MaxErr > m {
			m = it.MaxErr
		}
	}
	return m
}

func (r *SeriesResult) collect(f func(IterMetrics) float64) []float64 {
	out := make([]float64, len(r.Iters))
	for i, m := range r.Iters {
		out[i] = f(m)
	}
	return out
}

// MeanStd is a mean ± standard deviation pair as printed in the
// paper's tables.
type MeanStd struct {
	Mean, Std float64
}

// String formats like the paper: "81.776±0.014".
func (m MeanStd) String() string {
	return fmt.Sprintf("%.3f±%.3f", m.Mean, m.Std)
}

// NewMeanStd summarizes xs.
func NewMeanStd(xs []float64) MeanStd {
	return MeanStd{Mean: stats.Mean(xs), Std: stats.StdDev(xs)}
}
