package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"numarck/internal/core"
	"numarck/internal/lossless/fpc"
	"numarck/internal/lossless/xorpre"
)

// LosslessRow is one dataset's comparison of lossless compressors
// against NUMARCK's error-bounded reduction.
type LosslessRow struct {
	Dataset string
	// Saved percentages.
	FPC, XorRLE, XorFPC, NUMARCK float64
}

// LosslessResult reproduces the paper's related-work argument (§IV):
// lossless floating-point compressors preserve checkpoints exactly but
// reach a fraction of the reduction an error-bounded method does —
// Bautista-Gomez & Cappello report ~40 % maximum, Bicer et al. under
// 65 %, while NUMARCK exceeds 80 %.
type LosslessResult struct {
	Rows []LosslessRow
}

// RunLosslessComparison measures FPC, XOR+RLE, and XOR+FPC against
// NUMARCK (E=0.1 %, clustering, B=8) on one iteration of each of four
// representative datasets.
func RunLosslessComparison(seed int64) (*LosslessResult, error) {
	res := &LosslessResult{}
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering}

	flashSnaps, err := FLASHRunCached(12, 3, seed)
	if err != nil {
		return nil, err
	}

	datasets := []struct {
		name  string
		cmip5 bool
	}{
		{"rlus", true}, {"abs550aer", true}, {"dens", false}, {"pres", false},
	}
	for _, ds := range datasets {
		var prev, cur []float64
		if ds.cmip5 {
			series, err := CMIP5Series(ds.name, 12, seed)
			if err != nil {
				return nil, err
			}
			prev, cur = series[10], series[11]
		} else {
			series, err := FLASHSeries(flashSnaps, ds.name)
			if err != nil {
				return nil, err
			}
			prev, cur = series[10], series[11]
		}

		row := LosslessRow{Dataset: ds.name}
		row.FPC = fpc.Ratio(len(fpc.Compress(cur)), len(cur))
		xorComp := xorpre.Compress(cur)
		row.XorRLE = xorpre.Ratio(len(xorComp), len(cur))
		// XOR preconditioning feeding FPC: FPC recompresses the raw
		// stream; measure FPC over the XOR-delta stream by
		// reinterpreting it as doubles is not meaningful, so combine
		// as: min(xor-rle, fpc) per dataset would be artificial.
		// Instead, FPC over the delta values (cur[i] XOR cur[i-1]
		// reinterpreted) — the CC-style pipeline.
		row.XorFPC = fpc.Ratio(len(fpc.Compress(xorDeltas(cur))), len(cur))

		enc, err := core.Encode(prev, cur, opt)
		if err != nil {
			return nil, err
		}
		cr, err := enc.CompressionRatio()
		if err != nil {
			return nil, err
		}
		row.NUMARCK = cr
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// xorDeltas returns the XOR-preconditioned stream reinterpreted as
// float64s (the CC pipeline's intermediate representation).
func xorDeltas(vals []float64) []float64 {
	out := make([]float64, len(vals))
	var prev uint64
	for i, v := range vals {
		bits := math.Float64bits(v)
		out[i] = math.Float64frombits(bits ^ prev)
		prev = bits
	}
	return out
}

// WriteText renders the comparison.
func (r *LosslessResult) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Related work: lossless compressors vs NUMARCK (one iteration, % saved)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tFPC\tXOR+RLE\tXOR+FPC\tNUMARCK (E=0.1%)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\n",
			row.Dataset, row.FPC, row.XorRLE, row.XorFPC, row.NUMARCK)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "  paper §IV: lossless methods cap around 40-65%; error-bounded NUMARCK exceeds them")
	return nil
}

// Best returns the best lossless saving and NUMARCK's saving averaged
// over datasets, for the shape assertion.
func (r *LosslessResult) Best() (bestLossless, numarck float64) {
	for _, row := range r.Rows {
		b := row.FPC
		if row.XorRLE > b {
			b = row.XorRLE
		}
		if row.XorFPC > b {
			b = row.XorFPC
		}
		bestLossless += b
		numarck += row.NUMARCK
	}
	n := float64(len(r.Rows))
	return bestLossless / n, numarck / n
}
