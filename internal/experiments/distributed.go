package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"numarck/internal/core"
	"numarck/internal/dist"
)

// DistRow is one (ranks, mode) configuration's outcome.
type DistRow struct {
	Ranks        int
	Mode         dist.TableMode
	BytesMoved   int64
	TableEntries int
	Gamma        float64
	CompRatio    float64
}

// DistResult is the distributed local-vs-global table ablation: the
// data-movement/storage trade-off the paper's exascale motivation (§I)
// raises but does not quantify.
type DistResult struct {
	Variable string
	RawBytes int
	Rows     []DistRow
}

// RunDistributedAblation encodes one mc transition across 1/4/16/64
// ranks in both table modes.
func RunDistributedAblation(seed int64) (*DistResult, error) {
	series, err := CMIP5Series("mc", 7, seed)
	if err != nil {
		return nil, err
	}
	prev, cur := series[5], series[6]
	res := &DistResult{Variable: "mc", RawBytes: 8 * len(cur)}
	for _, ranks := range []int{1, 4, 16, 64} {
		for _, mode := range []dist.TableMode{dist.LocalTables, dist.GlobalTable} {
			r, err := dist.Encode(prev, cur, dist.Config{
				Ranks: ranks,
				Mode:  mode,
				Opt:   core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering},
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, DistRow{
				Ranks:        ranks,
				Mode:         mode,
				BytesMoved:   r.BytesMoved,
				TableEntries: r.TableEntries,
				Gamma:        r.Gamma(),
				CompRatio:    r.CompressionRatio(),
			})
		}
	}
	return res, nil
}

// WriteText renders the ablation.
func (r *DistResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Ablation: distributed table learning on %s (%d raw bytes/iter)\n", r.Variable, r.RawBytes)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  ranks\tmode\tbytes moved\ttable entries\tincompressible\tsaved")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%d\t%.2f%%\t%.2f%%\n",
			row.Ranks, row.Mode, row.BytesMoved, row.TableEntries, row.Gamma*100, row.CompRatio)
	}
	return tw.Flush()
}
