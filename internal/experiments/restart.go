package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/fputil"
	"numarck/internal/sim/flash"
)

// Fig8Config parameterizes the restart experiment (§III-G): the FLASH
// simulation is checkpointed every StepsPerCheckpoint steps; for each
// restart distance d in Distances the state is reconstructed from the
// checkpoint chain (one full checkpoint + d approximated deltas), the
// simulation restarts from it and runs ContinueCheckpoints more
// checkpoints, and the accumulated error against an uninterrupted
// golden run is measured at each.
type Fig8Config struct {
	Distances           []int
	ContinueCheckpoints int
	StepsPerCheckpoint  int
	ErrorBound          float64
	IndexBits           int
	Seed                int64
	// Dir is a scratch directory for checkpoint stores; a temp dir is
	// used when empty.
	Dir string
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Distances) == 0 {
		c.Distances = []int{2, 3, 4}
	}
	if c.ContinueCheckpoints <= 0 {
		c.ContinueCheckpoints = 8
	}
	if c.StepsPerCheckpoint <= 0 {
		c.StepsPerCheckpoint = 3
	}
	if c.ErrorBound <= 0 {
		c.ErrorBound = 0.001
	}
	if c.IndexBits <= 0 {
		c.IndexBits = 8
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// RestartStep is the error at one continued checkpoint.
type RestartStep struct {
	CheckpointIndex int
	// MeanErr and MaxErr are relative errors vs. the golden run,
	// aggregated over the paper's plotted variables (fractions).
	MeanErr map[string]float64
	MaxErr  map[string]float64
}

// RestartRun is one restart distance's trajectory.
type RestartRun struct {
	Distance int
	Steps    []RestartStep
}

// Fig8Strategy is one strategy's full restart experiment.
type Fig8Strategy struct {
	Strategy core.Strategy
	Runs     []RestartRun
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	Cfg        Fig8Config
	Variables  []string
	Strategies []Fig8Strategy
}

// fig8Variables are the variables the paper plots in Fig. 8. In this
// substitute's gamma-law EOS, temp is exactly proportional to eint, so
// that pair tracks identically (the paper observes the same effect for
// pres/temp in its FLASH build).
var fig8Variables = []string{"dens", "pres", "temp", "eint", "velx"}

// RunFig8 executes the restart experiment for all three strategies.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	maxDist := 0
	for _, d := range cfg.Distances {
		if d <= 0 {
			return nil, fmt.Errorf("experiments: restart distance %d must be positive", d)
		}
		if d > maxDist {
			maxDist = d
		}
	}
	totalCkpts := maxDist + cfg.ContinueCheckpoints + 1

	// Golden uninterrupted run.
	golden, err := FLASHRunCached(totalCkpts, cfg.StepsPerCheckpoint, cfg.Seed)
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{Cfg: cfg, Variables: fig8Variables}
	for _, strat := range core.Strategies {
		fs, err := runFig8Strategy(cfg, golden, strat)
		if err != nil {
			return nil, err
		}
		res.Strategies = append(res.Strategies, *fs)
	}
	return res, nil
}

func runFig8Strategy(cfg Fig8Config, golden []*flash.Snapshot, strat core.Strategy) (_ *Fig8Strategy, err error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "numarck-fig8-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	opt := core.Options{ErrorBound: cfg.ErrorBound, IndexBits: cfg.IndexBits, Strategy: strat}
	st, err := checkpoint.Create(fmt.Sprintf("%s/%s", dir, strat), opt)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}()
	// Write the checkpoint chain: full at index 0, deltas after,
	// exactly the paper's layout for studying accumulated error.
	w := checkpoint.NewWriter(st, 0)
	maxDist := 0
	for _, d := range cfg.Distances {
		if d > maxDist {
			maxDist = d
		}
	}
	for i := 0; i <= maxDist; i++ {
		if _, err := w.Append(i, golden[i].Vars); err != nil {
			return nil, fmt.Errorf("append checkpoint %d: %w", i, err)
		}
	}

	fs := &Fig8Strategy{Strategy: strat}
	for _, d := range cfg.Distances {
		run, err := runFig8Restart(cfg, golden, st, d)
		if err != nil {
			return nil, fmt.Errorf("strategy %s distance %d: %w", strat, d, err)
		}
		fs.Runs = append(fs.Runs, *run)
	}
	return fs, nil
}

func runFig8Restart(cfg Fig8Config, golden []*flash.Snapshot, st *checkpoint.Store, dist int) (*RestartRun, error) {
	// Reconstruct every variable at checkpoint `dist` from the store.
	recVars := map[string][]float64{}
	for _, v := range flash.Variables {
		data, err := st.Restart(v, dist)
		if err != nil {
			return nil, err
		}
		recVars[v] = data
	}
	snap := &flash.Snapshot{
		Step: golden[dist].Step,
		Time: golden[dist].Time,
		Vars: recVars,
	}
	sim, err := flash.New(flash.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := sim.Restart(snap); err != nil {
		return nil, err
	}

	run := &RestartRun{Distance: dist}
	for k := 1; k <= cfg.ContinueCheckpoints; k++ {
		sim.StepN(cfg.StepsPerCheckpoint)
		got := sim.Checkpoint()
		want := golden[dist+k]
		step := RestartStep{
			CheckpointIndex: dist + k,
			MeanErr:         map[string]float64{},
			MaxErr:          map[string]float64{},
		}
		for _, v := range fig8Variables {
			mean, max := relativeErrors(want.Vars[v], got.Vars[v])
			step.MeanErr[v] = mean
			step.MaxErr[v] = max
		}
		run.Steps = append(run.Steps, step)
	}
	return run, nil
}

// relativeErrors returns mean and max |got-want| relative to the
// golden field's magnitude scale. Per-point division would explode on
// near-zero velocities, so errors are normalized by max(|want[i]|,
// 1e-3·max|want|) as is standard for field comparisons.
func relativeErrors(want, got []float64) (mean, max float64) {
	var fieldScale float64
	for _, w := range want {
		if a := math.Abs(w); a > fieldScale {
			fieldScale = a
		}
	}
	floor := 1e-3 * fieldScale
	if fputil.IsZero(floor) {
		floor = 1e-300
	}
	var sum float64
	for i := range want {
		scale := math.Abs(want[i])
		if scale < floor {
			scale = floor
		}
		rel := math.Abs(got[i]-want[i]) / scale
		sum += rel
		if rel > max {
			max = rel
		}
	}
	return sum / float64(len(want)), max
}

// WriteText renders the restart trajectories.
func (r *Fig8Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Fig 8: restart error vs golden run (E=%.2f%%, B=%d, %d continued checkpoints)\n",
		r.Cfg.ErrorBound*100, r.Cfg.IndexBits, r.Cfg.ContinueCheckpoints)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  strategy\trestart dist\tcheckpoint\tvar\tmean err\tmax err")
	for _, s := range r.Strategies {
		for _, run := range s.Runs {
			for _, step := range run.Steps {
				for _, v := range r.Variables {
					fmt.Fprintf(tw, "  %s\t%d\t%d\t%s\t%.5f%%\t%.5f%%\n",
						s.Strategy, run.Distance, step.CheckpointIndex, v,
						step.MeanErr[v]*100, step.MaxErr[v]*100)
				}
			}
		}
	}
	return tw.Flush()
}

// Summary aggregates the experiment the way the paper's prose does:
// per strategy, the worst max error across all runs and the final mean
// error per restart distance.
type Fig8Summary struct {
	Strategy     core.Strategy
	WorstMaxErr  float64
	FinalMeanErr map[int]float64 // by restart distance, averaged over variables
}

// Summarize folds the trajectories into per-strategy headline numbers.
func (r *Fig8Result) Summarize() []Fig8Summary {
	out := make([]Fig8Summary, 0, len(r.Strategies))
	for _, s := range r.Strategies {
		sum := Fig8Summary{Strategy: s.Strategy, FinalMeanErr: map[int]float64{}}
		for _, run := range s.Runs {
			if len(run.Steps) == 0 {
				continue
			}
			last := run.Steps[len(run.Steps)-1]
			var acc float64
			for _, v := range r.Variables {
				acc += last.MeanErr[v]
				for _, step := range run.Steps {
					if step.MaxErr[v] > sum.WorstMaxErr {
						sum.WorstMaxErr = step.MaxErr[v]
					}
				}
			}
			sum.FinalMeanErr[run.Distance] = acc / float64(len(r.Variables))
		}
		out = append(out, sum)
	}
	return out
}

// WriteSummary renders the headline numbers.
func (r *Fig8Result) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  strategy\tworst max err\tfinal mean err by distance")
	for _, s := range r.Summarize() {
		fmt.Fprintf(tw, "  %s\t%.5f%%\t", s.Strategy, s.WorstMaxErr*100)
		for _, d := range r.Cfg.Distances {
			fmt.Fprintf(tw, "d=%d: %.5f%%  ", d, s.FinalMeanErr[d]*100)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
