package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"numarck/internal/core"
	"numarck/internal/lossless/fpc"
	"numarck/internal/stats"
)

// ---------------------------------------------------------------------
// Ablation A — k-means seeding. The paper claims histogram seeding
// overcomes k-means' initialization sensitivity; this ablation runs the
// clustering strategy with both seedings on the hardest CMIP5 variable.

// SeedingRow compares the two seedings at one iteration.
type SeedingRow struct {
	Iteration                    int
	GammaHistogram, GammaUniform float64
}

// SeedingResult is the seeding ablation outcome.
type SeedingResult struct {
	Variable string
	Rows     []SeedingRow
}

// RunSeedingAblation encodes abs550aer with histogram- and
// uniform-seeded clustering.
func RunSeedingAblation(iters int, seed int64) (*SeedingResult, error) {
	series, err := CMIP5Series("abs550aer", iters, seed)
	if err != nil {
		return nil, err
	}
	res := &SeedingResult{Variable: "abs550aer"}
	for i := 1; i < len(series); i++ {
		hist, err := core.Encode(series[i-1], series[i], core.Options{
			ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering,
		})
		if err != nil {
			return nil, err
		}
		uni, err := core.Encode(series[i-1], series[i], core.Options{
			ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering, UniformSeeding: true,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SeedingRow{
			Iteration:      i,
			GammaHistogram: hist.Gamma(),
			GammaUniform:   uni.Gamma(),
		})
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *SeedingResult) WriteText(w io.Writer) error {
	var gh, gu []float64
	for _, row := range r.Rows {
		gh = append(gh, row.GammaHistogram)
		gu = append(gu, row.GammaUniform)
	}
	fmt.Fprintf(w, "Ablation: k-means seeding on %s (%d iterations)\n", r.Variable, len(r.Rows))
	fmt.Fprintf(w, "  histogram seeding: avg incompressible %.2f%%\n", stats.Mean(gh)*100)
	fmt.Fprintf(w, "  uniform seeding:   avg incompressible %.2f%%\n", stats.Mean(gu)*100)
	return nil
}

// ---------------------------------------------------------------------
// Ablation B — reserved zero index. NUMARCK maps |Δ| < E to a reserved
// index instead of spending a learned bin on them; this measures what
// that reservation buys.

// ZeroIndexRow compares on/off at one iteration.
type ZeroIndexRow struct {
	Iteration             int
	GammaOn, GammaOff     float64
	MeanErrOn, MeanErrOff float64
}

// ZeroIndexResult is the zero-index ablation outcome.
type ZeroIndexResult struct {
	Variable string
	Rows     []ZeroIndexRow
}

// RunZeroIndexAblation encodes rlds with and without the reserved zero
// index.
func RunZeroIndexAblation(iters int, seed int64) (*ZeroIndexResult, error) {
	series, err := CMIP5Series("rlds", iters, seed)
	if err != nil {
		return nil, err
	}
	res := &ZeroIndexResult{Variable: "rlds"}
	for i := 1; i < len(series); i++ {
		on, err := core.Encode(series[i-1], series[i], core.Options{
			ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering,
		})
		if err != nil {
			return nil, err
		}
		off, err := core.Encode(series[i-1], series[i], core.Options{
			ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering, DisableZeroIndex: true,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ZeroIndexRow{
			Iteration:  i,
			GammaOn:    on.Gamma(),
			GammaOff:   off.Gamma(),
			MeanErrOn:  on.MeanErrorRate(),
			MeanErrOff: off.MeanErrorRate(),
		})
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *ZeroIndexResult) WriteText(w io.Writer) error {
	var gOn, gOff, eOn, eOff []float64
	for _, row := range r.Rows {
		gOn = append(gOn, row.GammaOn)
		gOff = append(gOff, row.GammaOff)
		eOn = append(eOn, row.MeanErrOn)
		eOff = append(eOff, row.MeanErrOff)
	}
	fmt.Fprintf(w, "Ablation: reserved zero index on %s (%d iterations)\n", r.Variable, len(r.Rows))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  variant\tavg incompressible\tavg mean err")
	fmt.Fprintf(tw, "  reserved (paper)\t%.2f%%\t%.5f%%\n", stats.Mean(gOn)*100, stats.Mean(eOn)*100)
	fmt.Fprintf(tw, "  disabled\t%.2f%%\t%.5f%%\n", stats.Mean(gOff)*100, stats.Mean(eOff)*100)
	return tw.Flush()
}

// ---------------------------------------------------------------------
// Ablation D — temporal table reuse. The paper's premise is that the
// change distribution *evolves slowly*; if so, the table learned at
// iteration i-1 should still describe iteration i reasonably well.
// This ablation encodes each iteration against the previous iteration's
// clustering table (EncodeWithTable) and compares the incompressible
// ratio against learning fresh — quantifying how much the per-iteration
// k-means actually buys.

// ReuseRow is one iteration's fresh-vs-reused comparison.
type ReuseRow struct {
	Iteration              int
	GammaFresh, GammaReuse float64
}

// ReuseResult is the table-reuse ablation outcome.
type ReuseResult struct {
	Variable string
	Rows     []ReuseRow
}

// RunTableReuseAblation runs the comparison on rlus (slowly evolving)
// across iterations.
func RunTableReuseAblation(iters int, seed int64) (*ReuseResult, error) {
	series, err := CMIP5Series("rlus", iters, seed)
	if err != nil {
		return nil, err
	}
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering}
	res := &ReuseResult{Variable: "rlus"}
	var prevTable []float64
	for i := 1; i < len(series); i++ {
		fresh, err := core.Encode(series[i-1], series[i], opt)
		if err != nil {
			return nil, err
		}
		row := ReuseRow{Iteration: i, GammaFresh: fresh.Gamma()}
		if len(prevTable) > 0 {
			reused, err := core.EncodeWithTable(series[i-1], series[i], prevTable, opt)
			if err != nil {
				return nil, err
			}
			row.GammaReuse = reused.Gamma()
			res.Rows = append(res.Rows, row)
		}
		prevTable = fresh.BinRatios
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *ReuseResult) WriteText(w io.Writer) error {
	var gf, gr []float64
	for _, row := range r.Rows {
		gf = append(gf, row.GammaFresh)
		gr = append(gr, row.GammaReuse)
	}
	fmt.Fprintf(w, "Ablation: temporal table reuse on %s (%d iterations)\n", r.Variable, len(r.Rows))
	fmt.Fprintf(w, "  fresh table each iteration: avg incompressible %.2f%%\n", stats.Mean(gf)*100)
	fmt.Fprintf(w, "  previous iteration's table: avg incompressible %.2f%%\n", stats.Mean(gr)*100)
	fmt.Fprintf(w, "  (a small gap confirms the distributions evolve slowly, the paper's premise)\n")
	return nil
}

// ---------------------------------------------------------------------
// Ablation C — FPC post-pass. §III-B notes a lossless pass over the
// encoded payload could raise the ratio further but leaves it out of
// scope; we measure it.

// FPCRow is one iteration's sizes.
type FPCRow struct {
	Iteration    int
	RawBytes     int // 8 bytes/point
	EncodedBytes int // NUMARCK payload
	PostFPCBytes int // NUMARCK payload after FPC
}

// FPCResult is the FPC post-pass measurement.
type FPCResult struct {
	Variable string
	Rows     []FPCRow
}

// RunFPCPostPass encodes rlus and FPC-compresses the exact-value and
// bin-table sections (the parts stored as raw doubles).
func RunFPCPostPass(iters int, seed int64) (*FPCResult, error) {
	series, err := CMIP5Series("rlus", iters, seed)
	if err != nil {
		return nil, err
	}
	res := &FPCResult{Variable: "rlus"}
	for i := 1; i < len(series); i++ {
		enc, err := core.Encode(series[i-1], series[i], core.Options{
			ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering,
		})
		if err != nil {
			return nil, err
		}
		packed, err := enc.PackedIndices()
		if err != nil {
			return nil, err
		}
		rawDoubles := append(append([]float64{}, enc.BinRatios...), enc.Exact...)
		post := len(fpc.Compress(rawDoubles)) + len(packed) + len(enc.Incompressible.Bytes())
		res.Rows = append(res.Rows, FPCRow{
			Iteration:    i,
			RawBytes:     8 * enc.N,
			EncodedBytes: enc.EncodedSizeBytes(),
			PostFPCBytes: post,
		})
	}
	return res, nil
}

// WriteText renders the sizes.
func (r *FPCResult) WriteText(w io.Writer) error {
	var raw, encd, post float64
	for _, row := range r.Rows {
		raw += float64(row.RawBytes)
		encd += float64(row.EncodedBytes)
		post += float64(row.PostFPCBytes)
	}
	fmt.Fprintf(w, "Ablation: FPC post-pass on %s (%d iterations)\n", r.Variable, len(r.Rows))
	fmt.Fprintf(w, "  raw:            %.0f bytes/iter\n", raw/float64(len(r.Rows)))
	fmt.Fprintf(w, "  NUMARCK:        %.0f bytes/iter (%.2f%% saved)\n", encd/float64(len(r.Rows)), (raw-encd)/raw*100)
	fmt.Fprintf(w, "  NUMARCK + FPC:  %.0f bytes/iter (%.2f%% saved)\n", post/float64(len(r.Rows)), (raw-post)/raw*100)
	return nil
}
