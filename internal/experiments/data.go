// Package experiments contains the drivers that regenerate every table
// and figure of the NUMARCK paper's evaluation (§III) on the synthetic
// FLASH and CMIP5 substitutes. Each experiment has a Run function
// returning a structured result and a text formatter used by
// cmd/experiments and the top-level benchmark suite; EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sync"

	"numarck/internal/sim/climate"
	"numarck/internal/sim/flash"
)

// DefaultSeed fixes the workload RNG so experiment output is
// reproducible run to run.
const DefaultSeed = 20140101

// CMIP5Series returns iterations [0, iters) of one synthetic CMIP5
// variable (12960 points each).
func CMIP5Series(variable string, iters int, seed int64) ([][]float64, error) {
	g, err := climate.NewGenerator(variable, seed)
	if err != nil {
		return nil, err
	}
	return g.Iterations(0, iters), nil
}

// FLASHRun advances the FLASH-like simulator and captures `checkpoints`
// snapshots taken every stepsPer steps (the first snapshot is the
// initial condition after stepsPer warm-up steps, so the blast has
// started to evolve).
func FLASHRun(checkpoints, stepsPer int, seed int64) ([]*flash.Snapshot, error) {
	if checkpoints < 1 || stepsPer < 1 {
		return nil, fmt.Errorf("experiments: need checkpoints>=1 and stepsPer>=1, got %d, %d", checkpoints, stepsPer)
	}
	sim, err := flash.New(flash.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	snaps := make([]*flash.Snapshot, 0, checkpoints)
	for c := 0; c < checkpoints; c++ {
		sim.StepN(stepsPer)
		snaps = append(snaps, sim.Checkpoint())
	}
	return snaps, nil
}

// FLASHSeries extracts one variable across snapshots as a per-iteration
// series.
func FLASHSeries(snaps []*flash.Snapshot, variable string) ([][]float64, error) {
	out := make([][]float64, len(snaps))
	for i, s := range snaps {
		arr, ok := s.Vars[variable]
		if !ok {
			return nil, fmt.Errorf("experiments: snapshot %d missing variable %q", i, variable)
		}
		out[i] = arr
	}
	return out, nil
}

// flashCache memoizes FLASH runs: several experiments need the same
// simulation and the solver is the most expensive workload generator.
var flashCache sync.Map // key string -> []*flash.Snapshot

// FLASHRunCached is FLASHRun with memoization on (checkpoints,
// stepsPer, seed).
func FLASHRunCached(checkpoints, stepsPer int, seed int64) ([]*flash.Snapshot, error) {
	key := fmt.Sprintf("%d/%d/%d", checkpoints, stepsPer, seed)
	if v, ok := flashCache.Load(key); ok {
		return v.([]*flash.Snapshot), nil
	}
	snaps, err := FLASHRun(checkpoints, stepsPer, seed)
	if err != nil {
		return nil, err
	}
	flashCache.Store(key, snaps)
	return snaps, nil
}

// CMIP5Variables lists the paper's CMIP5 selection in its order.
func CMIP5Variables() []string { return climate.VariableNames() }

// FLASHVariables lists the 10 FLASH checkpoint variables.
func FLASHVariables() []string { return flash.Variables }

// TableDatasets lists the 10 datasets of Tables I and II in paper
// order: five CMIP5 variables then five FLASH variables.
var TableDatasets = []struct {
	Name  string
	CMIP5 bool
}{
	{"rlus", true},
	{"mrsos", true},
	{"mrro", true},
	{"rlds", true},
	{"mc", true},
	{"dens", false},
	{"pres", false},
	{"temp", false},
	{"ener", false},
	{"eint", false},
}
