package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"numarck/internal/core"
	"numarck/internal/fputil"
	"numarck/internal/stats"
)

// ---------------------------------------------------------------------
// Fig. 1 — the motivating observation: individual snapshots look random
// but the distribution of relative changes is heavily concentrated near
// zero.

// Fig1Result summarizes two consecutive rlus iterations and the
// distribution of their change ratios.
type Fig1Result struct {
	Variable   string
	Iter1      stats.Summary // value distribution at iteration 1
	Iter2      stats.Summary // value distribution at iteration 2
	Ratios     stats.Summary // change-ratio distribution
	FracBelow  map[string]float64
	RatioHisto *stats.Histogram // 40-bin histogram of ratios (Fig 1D)
}

// RunFig1 reproduces Fig. 1 on the synthetic rlus data.
func RunFig1(seed int64) (*Fig1Result, error) {
	series, err := CMIP5Series("rlus", 3, seed)
	if err != nil {
		return nil, err
	}
	prev, cur := series[1], series[2]
	ratios := make([]float64, 0, len(prev))
	for i := range prev {
		if !fputil.IsZero(prev[i]) {
			ratios = append(ratios, (cur[i]-prev[i])/prev[i])
		}
	}
	s1, err := stats.Summarize(prev)
	if err != nil {
		return nil, err
	}
	s2, err := stats.Summarize(cur)
	if err != nil {
		return nil, err
	}
	sr, err := stats.Summarize(ratios)
	if err != nil {
		return nil, err
	}
	histo, err := stats.NewHistogram(ratios, 40)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		Variable: "rlus",
		Iter1:    s1,
		Iter2:    s2,
		Ratios:   sr,
		FracBelow: map[string]float64{
			"0.1%": stats.FractionWithin(ratios, 0.001),
			"0.5%": stats.FractionWithin(ratios, 0.005),
			"1.0%": stats.FractionWithin(ratios, 0.01),
		},
		RatioHisto: histo,
	}, nil
}

// WriteText renders the result.
func (r *Fig1Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Fig 1: %s slices and change distribution\n", r.Variable)
	fmt.Fprintf(w, "  iteration 1 values: mean=%.3f std=%.3f range=[%.3f, %.3f]\n", r.Iter1.Mean, r.Iter1.Std, r.Iter1.Min, r.Iter1.Max)
	fmt.Fprintf(w, "  iteration 2 values: mean=%.3f std=%.3f range=[%.3f, %.3f]\n", r.Iter2.Mean, r.Iter2.Std, r.Iter2.Min, r.Iter2.Max)
	fmt.Fprintf(w, "  change ratios: mean=%.5f%% std=%.5f%% range=[%.4f%%, %.4f%%]\n",
		r.Ratios.Mean*100, r.Ratios.Std*100, r.Ratios.Min*100, r.Ratios.Max*100)
	for _, k := range []string{"0.1%", "0.5%", "1.0%"} {
		fmt.Fprintf(w, "  |change| < %s: %.1f%% of points\n", k, r.FracBelow[k]*100)
	}
	fmt.Fprintf(w, "  paper: >75%% of rlus points change by < 0.5%% per step\n")
	return nil
}

// ---------------------------------------------------------------------
// Fig. 3 — occupancy of the 255 bins for FLASH dens between iterations
// 32 and 33, per strategy.

// Fig3Strategy is the per-strategy part of Fig. 3.
type Fig3Strategy struct {
	Strategy     core.Strategy
	OccupiedBins int     // bins holding at least one point
	TotalBins    int     // 2^B - 1
	TopBinShare  float64 // fraction of binned points in the largest bin
	ZeroIndex    int     // points on the reserved index 0
	Gamma        float64
	BinCounts    []int // occupancy per bin (index 1..2^B-1)
}

// Fig3Result reproduces Fig. 3.
type Fig3Result struct {
	Variable   string
	FromIter   int
	Strategies []Fig3Strategy
}

// RunFig3 encodes dens between FLASH checkpoints 32 and 33 (E=0.1 %,
// B=8) under each strategy and reports the bin histograms.
func RunFig3(seed int64) (*Fig3Result, error) {
	snaps, err := FLASHRunCached(34, 3, seed)
	if err != nil {
		return nil, err
	}
	series, err := FLASHSeries(snaps, "dens")
	if err != nil {
		return nil, err
	}
	prev, cur := series[32], series[33]
	res := &Fig3Result{Variable: "dens", FromIter: 32}
	for _, s := range core.Strategies {
		opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s}
		enc, err := core.Encode(prev, cur, opt)
		if err != nil {
			return nil, err
		}
		fs := Fig3Strategy{
			Strategy:  s,
			TotalBins: opt.NumBins(),
			BinCounts: make([]int, opt.NumBins()),
			Gamma:     enc.Gamma(),
		}
		binned := 0
		for j, idx := range enc.Indices {
			if enc.Incompressible.Get(j) {
				continue
			}
			if idx == 0 {
				fs.ZeroIndex++
				continue
			}
			fs.BinCounts[idx-1]++
			binned++
		}
		top := 0
		for _, c := range fs.BinCounts {
			if c > 0 {
				fs.OccupiedBins++
			}
			if c > top {
				top = c
			}
		}
		if binned > 0 {
			fs.TopBinShare = float64(top) / float64(binned)
		}
		res.Strategies = append(res.Strategies, fs)
	}
	return res, nil
}

// WriteText renders the result.
func (r *Fig3Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Fig 3: bin histograms for FLASH %s, iteration %d->%d (E=0.1%%, B=8)\n", r.Variable, r.FromIter, r.FromIter+1)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  strategy\toccupied bins\tzero-index pts\ttop-bin share\tincompressible")
	for _, s := range r.Strategies {
		fmt.Fprintf(tw, "  %s\t%d/%d\t%d\t%.1f%%\t%.2f%%\n",
			s.Strategy, s.OccupiedBins, s.TotalBins, s.ZeroIndex, s.TopBinShare*100, s.Gamma*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  paper: clustering spreads mass over bins matching the dense areas; equal-width concentrates it\n")
	return nil
}

// ---------------------------------------------------------------------
// Figs. 4 and 5 — incompressible ratio and mean error rate per
// iteration for every variable and strategy (E=0.1 %, B=8).

// FigSeriesResult holds Fig. 4 (CMIP5) or Fig. 5 (FLASH).
type FigSeriesResult struct {
	Title   string
	Results []*SeriesResult // one per (variable, strategy)
}

// RunFig4 reproduces Fig. 4 on all six CMIP5 variables.
func RunFig4(iters int, seed int64) (*FigSeriesResult, error) {
	if iters < 2 {
		return nil, fmt.Errorf("experiments: fig4 needs >= 2 iterations")
	}
	out := &FigSeriesResult{Title: "Fig 4: NUMARCK on CMIP5 (E=0.1%, B=8)"}
	for _, v := range CMIP5Variables() {
		series, err := CMIP5Series(v, iters, seed)
		if err != nil {
			return nil, err
		}
		for _, s := range core.Strategies {
			r, err := RunSeries(v, series, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s})
			if err != nil {
				return nil, err
			}
			out.Results = append(out.Results, r)
		}
	}
	return out, nil
}

// RunFig5 reproduces Fig. 5 on all ten FLASH variables.
func RunFig5(checkpoints int, seed int64) (*FigSeriesResult, error) {
	if checkpoints < 2 {
		return nil, fmt.Errorf("experiments: fig5 needs >= 2 checkpoints")
	}
	snaps, err := FLASHRunCached(checkpoints, 3, seed)
	if err != nil {
		return nil, err
	}
	out := &FigSeriesResult{Title: "Fig 5: NUMARCK on FLASH (E=0.1%, B=8)"}
	for _, v := range FLASHVariables() {
		series, err := FLASHSeries(snaps, v)
		if err != nil {
			return nil, err
		}
		for _, s := range core.Strategies {
			r, err := RunSeries(v, series, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s})
			if err != nil {
				return nil, err
			}
			out.Results = append(out.Results, r)
		}
	}
	return out, nil
}

// WriteText renders average incompressible ratio and mean error per
// (variable, strategy).
func (r *FigSeriesResult) WriteText(w io.Writer) error {
	fmt.Fprintln(w, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  variable\tstrategy\tavg incompressible\tavg mean err\tworst max err\tavg comp ratio")
	for _, res := range r.Results {
		fmt.Fprintf(tw, "  %s\t%s\t%.2f%%\t%.5f%%\t%.5f%%\t%.2f%%\n",
			res.Variable, res.Opt.Strategy, res.AvgGamma()*100,
			res.AvgMeanErr()*100, res.MaxMaxErr()*100, res.AvgCompRatio())
	}
	return tw.Flush()
}

// ---------------------------------------------------------------------
// Fig. 6 — effect of the approximation precision B (equal-width, rlds,
// E=0.1 %).

// Fig6Row is one precision setting.
type Fig6Row struct {
	IndexBits    int
	AvgGamma     float64
	AvgMeanErr   float64
	AvgCompRatio float64
	Series       *SeriesResult
}

// Fig6Result reproduces Fig. 6.
type Fig6Result struct {
	Variable string
	Rows     []Fig6Row
}

// RunFig6 sweeps B over {8, 9, 10} on rlds with equal-width binning.
func RunFig6(iters int, seed int64) (*Fig6Result, error) {
	series, err := CMIP5Series("rlds", iters, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Variable: "rlds"}
	for _, b := range []int{8, 9, 10} {
		r, err := RunSeries("rlds", series, core.Options{ErrorBound: 0.001, IndexBits: b, Strategy: core.EqualWidth})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			IndexBits:    b,
			AvgGamma:     r.AvgGamma(),
			AvgMeanErr:   r.AvgMeanErr(),
			AvgCompRatio: r.AvgCompRatio(),
			Series:       r,
		})
	}
	return res, nil
}

// WriteText renders the sweep.
func (r *Fig6Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Fig 6: precision sweep on %s (equal-width, E=0.1%%)\n", r.Variable)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  B\tavg incompressible\tavg mean err\tavg comp ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %d\t%.2f%%\t%.5f%%\t%.2f%%\n",
			row.IndexBits, row.AvgGamma*100, row.AvgMeanErr*100, row.AvgCompRatio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "  paper: 8->9 bits collapses incompressible ratio (60%->20%), 10 bits ~85% compression")
	return nil
}

// ---------------------------------------------------------------------
// Fig. 7 — effect of the user error bound E (clustering, abs550aer).

// Fig7Row is one error-bound setting.
type Fig7Row struct {
	ErrorBound   float64
	AvgGamma     float64
	AvgMeanErr   float64
	AvgCompRatio float64
	Series       *SeriesResult
}

// Fig7Result reproduces Fig. 7.
type Fig7Result struct {
	Variable string
	Rows     []Fig7Row
}

// RunFig7 sweeps E over {0.1..0.5 %} on abs550aer with clustering.
func RunFig7(iters int, seed int64) (*Fig7Result, error) {
	series, err := CMIP5Series("abs550aer", iters, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Variable: "abs550aer"}
	for _, e := range []float64{0.001, 0.002, 0.003, 0.004, 0.005} {
		r, err := RunSeries("abs550aer", series, core.Options{ErrorBound: e, IndexBits: 8, Strategy: core.Clustering})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig7Row{
			ErrorBound:   e,
			AvgGamma:     r.AvgGamma(),
			AvgMeanErr:   r.AvgMeanErr(),
			AvgCompRatio: r.AvgCompRatio(),
			Series:       r,
		})
	}
	return res, nil
}

// WriteText renders the sweep.
func (r *Fig7Result) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Fig 7: error-bound sweep on %s (clustering, B=8)\n", r.Variable)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  E\tavg incompressible\tavg mean err\tavg comp ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "  %.1f%%\t%.2f%%\t%.5f%%\t%.2f%%\n",
			row.ErrorBound*100, row.AvgGamma*100, row.AvgMeanErr*100, row.AvgCompRatio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "  paper: E 0.1->0.5% drops incompressible >40%->atop <10%, compression <50%->80%+, mean err stays << E")
	return nil
}
