package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// LoadCodecBench reads a BENCH_codec.json file.
func LoadCodecBench(path string) (*CodecBenchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r CodecBenchResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", path, err)
	}
	return &r, nil
}

// pctDelta formats new relative to old as a signed percentage; old <= 0
// yields "n/a" (a stage absent from the old run has no baseline).
func pctDelta(old, new int64) string {
	if old <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(new-old)/float64(old))
}

// diffLine prints one "name: old -> new (delta)" row in milliseconds.
func diffLine(w io.Writer, indent, name string, old, new int64) error {
	_, err := fmt.Fprintf(w, "%s%-18s %9.2fms -> %9.2fms  %s\n",
		indent, name, float64(old)/1e6, float64(new)/1e6, pctDelta(old, new))
	return err
}

// DiffCodecBench renders the per-row and per-stage deltas between two
// codec bench results: headline encode/decode times, decode worker
// rows, encoded size, and the streaming per-stage breakdowns. Rows are
// matched by strategy name; strategies present in only one file are
// reported and skipped. Comparing runs from different datasets or
// machines is flagged, not refused — the reader decides what a delta
// across environments means.
func DiffCodecBench(old, new *CodecBenchResult, w io.Writer) error {
	if old.Points != new.Points || old.ChunkPoints != new.ChunkPoints {
		if _, err := fmt.Fprintf(w, "warning: shapes differ (%d points/%d chunk vs %d/%d) — deltas mix workload changes with code changes\n",
			old.Points, old.ChunkPoints, new.Points, new.ChunkPoints); err != nil {
			return err
		}
	}
	if old.NumCPU != new.NumCPU || old.GoMaxProcs != new.GoMaxProcs {
		if _, err := fmt.Fprintf(w, "warning: environments differ (%d CPU/GOMAXPROCS %d vs %d/%d)\n",
			old.NumCPU, old.GoMaxProcs, new.NumCPU, new.GoMaxProcs); err != nil {
			return err
		}
	}
	oldRows := map[string]CodecStrategyTiming{}
	for _, r := range old.Rows {
		oldRows[r.Strategy] = r
	}
	seen := map[string]bool{}
	for _, nr := range new.Rows {
		seen[nr.Strategy] = true
		or, ok := oldRows[nr.Strategy]
		if !ok {
			if _, err := fmt.Fprintf(w, "%s: only in new file\n", nr.Strategy); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s:\n", nr.Strategy); err != nil {
			return err
		}
		if err := diffLine(w, "  ", "encode_inmemory", or.EncodeInMemoryNs, nr.EncodeInMemoryNs); err != nil {
			return err
		}
		if err := diffLine(w, "  ", "encode_stream", or.EncodeStreamNs, nr.EncodeStreamNs); err != nil {
			return err
		}
		if err := diffLine(w, "  ", "decode_inmemory", or.DecodeInMemoryNs, nr.DecodeInMemoryNs); err != nil {
			return err
		}
		oldDecode := map[int]CodecDecodeTiming{}
		for _, d := range or.DecodeChunked {
			oldDecode[d.Workers] = d
		}
		for _, d := range nr.DecodeChunked {
			od, ok := oldDecode[d.Workers]
			if !ok {
				continue
			}
			name := fmt.Sprintf("decode v2@%dw", d.Workers)
			if d.EnvLimited || od.EnvLimited {
				name += "*"
			}
			if err := diffLine(w, "  ", name, od.Ns, d.Ns); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  %-18s %9d B  -> %9d B   %s\n",
			"encoded_bytes", or.EncodedBytes, nr.EncodedBytes, pctDelta(int64(or.EncodedBytes), int64(nr.EncodedBytes))); err != nil {
			return err
		}
		if err := diffStages(w, "encode stage", or.EncodeStreamStages, nr.EncodeStreamStages); err != nil {
			return err
		}
		if err := diffStages(w, "decode stage", or.DecodeStreamStages, nr.DecodeStreamStages); err != nil {
			return err
		}
	}
	for _, r := range old.Rows {
		if !seen[r.Strategy] {
			if _, err := fmt.Fprintf(w, "%s: only in old file\n", r.Strategy); err != nil {
				return err
			}
		}
	}
	if new.EnvNote != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", new.EnvNote); err != nil {
			return err
		}
	}
	return nil
}

// diffStages prints the union of both runs' stage totals in a stable
// order.
func diffStages(w io.Writer, label string, old, new map[string]int64) error {
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range new {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if err := diffLine(w, "    ", label+" "+n, old[n], new[n]); err != nil {
			return err
		}
	}
	return nil
}
