package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// CodecBenchConfig sizes the codec benchmark.
type CodecBenchConfig struct {
	// Points is the dataset size (the CMIP5 substitute is tiled to
	// reach it). Default 200_000.
	Points int
	// Iters is how many times each measurement repeats; the minimum is
	// reported. Default 3.
	Iters int
	// ChunkPoints is the streaming chunk size. Default 1 << 15.
	ChunkPoints int
	// DecodeWorkers are the worker counts for the parallel chunked
	// decode. Default {1, 8}.
	DecodeWorkers []int
	// Seed fixes the workload.
	Seed int64
}

func (cfg CodecBenchConfig) withDefaults() CodecBenchConfig {
	if cfg.Points <= 0 {
		cfg.Points = 200_000
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	if cfg.ChunkPoints <= 0 {
		cfg.ChunkPoints = 1 << 15
	}
	if len(cfg.DecodeWorkers) == 0 {
		cfg.DecodeWorkers = []int{1, 8}
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	return cfg
}

// CodecDecodeTiming is one parallel-decode measurement of the chunked
// format.
type CodecDecodeTiming struct {
	Workers int     `json:"workers"`
	Ns      int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_1"`
	// EnvLimited marks a row whose worker count exceeds GOMAXPROCS:
	// its speedup measures scheduling overhead, not parallelism, and
	// must not be quoted as a scaling result.
	EnvLimited bool `json:"env_limited,omitempty"`
}

// CodecStrategyTiming is the benchmark row of one binning strategy.
// All times are the minimum over the configured repetitions. The
// per-stage maps come from one extra instrumented (internal/obs) run
// of each path after the timed repetitions, so the recorder overhead —
// tiny as it is — never pollutes the headline numbers; their keys are
// the obs stage names (ratio, table, assign, bitpack, crc, read,
// write, queue-wait, decode) and values are total nanoseconds.
type CodecStrategyTiming struct {
	Strategy string `json:"strategy"`
	// EncodeInMemoryNs times the in-memory route to the same output
	// bytes the streaming path produces: core.Encode plus the chunked
	// v2 serialization. Comparing it against EncodeStreamNs therefore
	// isolates the streaming pipeline's overhead, not the cost of
	// serializing at all.
	EncodeInMemoryNs int64 `json:"encode_inmemory_ns"`
	EncodeStreamNs   int64               `json:"encode_stream_ns"`
	DecodeInMemoryNs int64               `json:"decode_inmemory_ns"`
	DecodeChunked    []CodecDecodeTiming `json:"decode_chunked"`
	EncodedBytes     int                 `json:"encoded_bytes"`
	Gamma            float64             `json:"gamma"`
	// EncodeStreamStages breaks the streaming encode into per-stage
	// totals (ns by stage name).
	EncodeStreamStages map[string]int64 `json:"encode_stream_stage_ns,omitempty"`
	// DecodeStreamStages breaks the single-worker chunked decode into
	// per-stage totals (ns by stage name).
	DecodeStreamStages map[string]int64 `json:"decode_stream_stage_ns,omitempty"`
}

// stageTotals flattens a snapshot into a stage-name → total-ns map,
// dropping stages the run never touched.
func stageTotals(rec *obs.Recorder) map[string]int64 {
	totals := map[string]int64{}
	for _, st := range rec.Snapshot().Stages {
		if st.Count > 0 {
			totals[st.Name] = st.TotalNs
		}
	}
	return totals
}

// CodecBenchResult is the machine-readable output of the codec
// benchmark (BENCH_codec.json). NumCPU and GoMaxProcs record the
// machine honestly: parallel-decode speedups are only meaningful when
// the host actually has the cores.
type CodecBenchResult struct {
	Points      int                   `json:"points"`
	ChunkPoints int                   `json:"chunk_points"`
	Iters       int                   `json:"iters"`
	NumCPU      int                   `json:"num_cpu"`
	GoMaxProcs  int                   `json:"gomaxprocs"`
	Rows        []CodecStrategyTiming `json:"rows"`
	// EnvNote is set when any decode worker count exceeds GOMAXPROCS,
	// so a reader of the JSON cannot miss that those rows are
	// environment-limited.
	EnvNote string `json:"env_note,omitempty"`
}

// Validate checks the result's environment honesty invariants: the
// recorded CPU counts are sane and every decode row whose worker count
// exceeds GOMAXPROCS is marked env-limited (with the top-level note
// set). The bench runner refuses to emit results that fail this — a
// benchmark that misreports its environment is worse than none.
func (r *CodecBenchResult) Validate() error {
	if r.NumCPU < 1 {
		return fmt.Errorf("experiments: benchmark recorded num_cpu=%d", r.NumCPU)
	}
	if r.GoMaxProcs < 1 {
		return fmt.Errorf("experiments: benchmark recorded gomaxprocs=%d", r.GoMaxProcs)
	}
	anyLimited := false
	for _, row := range r.Rows {
		for _, t := range row.DecodeChunked {
			limited := t.Workers > r.GoMaxProcs
			if t.EnvLimited != limited {
				return fmt.Errorf("experiments: %s decode@%dw env_limited=%v with GOMAXPROCS=%d", row.Strategy, t.Workers, t.EnvLimited, r.GoMaxProcs)
			}
			anyLimited = anyLimited || limited
		}
	}
	if anyLimited && r.EnvNote == "" {
		return fmt.Errorf("experiments: env-limited decode rows present but env_note is empty")
	}
	return nil
}

// codecDataset tiles the synthetic CMIP5 rlus transition to n points.
func codecDataset(n int, seed int64) (prev, cur []float64, err error) {
	series, err := CMIP5Series("rlus", 2, seed)
	if err != nil {
		return nil, nil, err
	}
	base, next := series[0], series[1]
	prev = make([]float64, n)
	cur = make([]float64, n)
	for i := 0; i < n; i++ {
		prev[i] = base[i%len(base)]
		cur[i] = next[i%len(next)]
	}
	return prev, cur, nil
}

// timeMin runs fn iters times and returns the fastest wall-clock run.
func timeMin(iters int, fn func() error) (int64, error) {
	best := int64(math.MaxInt64)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best, nil
}

// RunCodecBench measures encode and decode throughput of the in-memory
// and streaming paths for every binning strategy.
func RunCodecBench(cfg CodecBenchConfig) (*CodecBenchResult, error) {
	cfg = cfg.withDefaults()
	prev, cur, err := codecDataset(cfg.Points, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &CodecBenchResult{
		Points:      cfg.Points,
		ChunkPoints: cfg.ChunkPoints,
		Iters:       cfg.Iters,
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	ccfg := chunk.Config{ChunkPoints: cfg.ChunkPoints}
	// All four strategies, not just the paper's three: equal-frequency
	// rides through the same pipeline.
	strategies := []core.Strategy{core.EqualWidth, core.LogScale, core.Clustering, core.EqualFrequency}
	for _, strategy := range strategies {
		opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: strategy}
		row := CodecStrategyTiming{Strategy: strategy.String()}

		var enc *core.Encoded
		row.EncodeInMemoryNs, err = timeMin(cfg.Iters, func() error {
			enc, err = core.Encode(prev, cur, opt)
			if err != nil {
				return err
			}
			_, err = checkpoint.MarshalDeltaV2("bench", 1, enc, cfg.ChunkPoints)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.Gamma = enc.Gamma()

		var v2 bytes.Buffer
		row.EncodeStreamNs, err = timeMin(cfg.Iters, func() error {
			v2.Reset()
			_, err := chunk.EncodeDeltaV2(&v2, "bench", 1, chunk.SliceSource(prev), chunk.SliceSource(cur), opt, ccfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.EncodedBytes = v2.Len()

		// One extra instrumented run for the per-stage breakdown, after
		// the timed repetitions so the headline min stays clean.
		encRec := obs.NewRecorder()
		var instrumented bytes.Buffer
		icfg := ccfg
		icfg.Obs = encRec
		if _, err := chunk.EncodeDeltaV2(&instrumented, "bench", 1, chunk.SliceSource(prev), chunk.SliceSource(cur), opt, icfg); err != nil {
			return nil, err
		}
		row.EncodeStreamStages = stageTotals(encRec)

		row.DecodeInMemoryNs, err = timeMin(cfg.Iters, func() error {
			_, err := enc.Decode(prev)
			return err
		})
		if err != nil {
			return nil, err
		}

		d, err := checkpoint.OpenDeltaV2(bytes.NewReader(v2.Bytes()), int64(v2.Len()))
		if err != nil {
			return nil, err
		}
		var baseNs int64
		for _, workers := range cfg.DecodeWorkers {
			w := workers
			ns, err := timeMin(cfg.Iters, func() error {
				_, err := d.Decode(prev, w)
				return err
			})
			if err != nil {
				return nil, err
			}
			t := CodecDecodeTiming{Workers: w, Ns: ns, EnvLimited: w > res.GoMaxProcs}
			if baseNs == 0 {
				baseNs = ns
			}
			if ns > 0 {
				t.Speedup = float64(baseNs) / float64(ns)
			}
			if t.EnvLimited && res.EnvNote == "" {
				res.EnvNote = fmt.Sprintf("decode rows with workers > GOMAXPROCS=%d are env_limited: their speedups measure scheduling overhead on this host, not parallel scaling", res.GoMaxProcs)
			}
			row.DecodeChunked = append(row.DecodeChunked, t)
		}

		decRec := obs.NewRecorder()
		err = chunk.DecodeDeltaV2(d, chunk.SliceSource(prev), chunk.Config{Workers: 1, Obs: decRec}, func([]float64) error { return nil })
		if err != nil {
			return nil, err
		}
		row.DecodeStreamStages = stageTotals(decRec)
		res.Rows = append(res.Rows, row)
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteJSON emits the result as indented JSON.
func (r *CodecBenchResult) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(r)
}

// WriteText prints a human-readable table.
func (r *CodecBenchResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "codec bench: %d points, chunks of %d, min of %d runs, %d CPU (GOMAXPROCS %d)\n",
		r.Points, r.ChunkPoints, r.Iters, r.NumCPU, r.GoMaxProcs); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-16s encode mem %8.2fms  stream %8.2fms | decode mem %7.2fms",
			row.Strategy,
			float64(row.EncodeInMemoryNs)/1e6, float64(row.EncodeStreamNs)/1e6,
			float64(row.DecodeInMemoryNs)/1e6); err != nil {
			return err
		}
		for _, t := range row.DecodeChunked {
			mark := ""
			if t.EnvLimited {
				mark = " ENV-LIMITED"
			}
			if _, err := fmt.Fprintf(w, "  v2@%dw %7.2fms (%.2fx%s)", t.Workers, float64(t.Ns)/1e6, t.Speedup, mark); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  | %d bytes, gamma %.2f%%\n", row.EncodedBytes, row.Gamma*100); err != nil {
			return err
		}
	}
	if r.EnvNote != "" {
		if _, err := fmt.Fprintf(w, "  note: %s\n", r.EnvNote); err != nil {
			return err
		}
	}
	return nil
}
