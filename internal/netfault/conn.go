package netfault

import (
	"net"
	"sync"
)

// This file is the TCP half of the injector: where Transport fakes a
// severed connection from inside the client process, WrapListener cuts
// the real socket server-side — the bytes genuinely stop mid-stream,
// exercising the client's torn-response handling against an actual
// half-written wire, not a simulated one.

// ConnFault severs one accepted connection after a byte budget.
type ConnFault struct {
	// Nth is the accepted connection (1-based) the fault applies to.
	Nth int
	// ReadAfter severs after this many bytes read from the client
	// (client→server). Negative means never.
	ReadAfter int64
	// WriteAfter severs after this many bytes written to the client
	// (server→client). Negative means never.
	WriteAfter int64
}

// faultListener applies ConnFaults to accepted connections.
type faultListener struct {
	net.Listener

	mu     sync.Mutex
	n      int
	faults []ConnFault
}

// WrapListener wraps ln so scheduled connections are severed at their
// byte budgets. Connections with no scheduled fault pass through
// untouched.
func WrapListener(ln net.Listener, faults ...ConnFault) net.Listener {
	return &faultListener{Listener: ln, faults: faults}
}

// Accept implements net.Listener, attaching the scheduled fault to the
// matching accepted connection.
func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	n := l.n
	l.mu.Unlock()
	for _, f := range l.faults {
		if f.Nth == n {
			return &cutConn{Conn: conn, readLeft: budget(f.ReadAfter), writeLeft: budget(f.WriteAfter)}, nil
		}
	}
	return conn, nil
}

// budget normalizes a fault byte budget: negative means unlimited.
func budget(v int64) int64 {
	if v < 0 {
		return int64(1) << 62
	}
	return v
}

// cutConn is a net.Conn that force-closes itself once either byte
// budget is spent, leaving the peer with a mid-stream connection reset
// — the honest signature of a failed machine, not a graceful EOF.
type cutConn struct {
	net.Conn

	mu        sync.Mutex
	readLeft  int64
	writeLeft int64
	cut       bool
}

// Read implements net.Conn, counting client→server bytes against the
// read budget.
func (c *cutConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut || c.readLeft <= 0 {
		c.sever()
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if int64(len(p)) > c.readLeft {
		p = p[:c.readLeft]
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readLeft -= int64(n)
	spent := c.readLeft <= 0
	c.mu.Unlock()
	if spent {
		c.mu.Lock()
		c.sever()
		c.mu.Unlock()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

// Write implements net.Conn, counting server→client bytes against the
// write budget; the budgeted prefix reaches the wire before the cut.
func (c *cutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut || c.writeLeft <= 0 {
		c.sever()
		c.mu.Unlock()
		return 0, ErrInjected
	}
	limit := int64(len(p))
	torn := false
	if limit > c.writeLeft {
		limit = c.writeLeft
		torn = true
	}
	c.mu.Unlock()
	n, err := c.Conn.Write(p[:limit])
	c.mu.Lock()
	c.writeLeft -= int64(n)
	c.mu.Unlock()
	if torn {
		c.mu.Lock()
		c.sever()
		c.mu.Unlock()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

// sever force-closes the underlying connection once. Callers hold mu.
func (c *cutConn) sever() {
	if c.cut {
		return
	}
	c.cut = true
	// The cut is the point; a close error on a doomed socket adds
	// nothing.
	_ = c.Conn.Close()
}
