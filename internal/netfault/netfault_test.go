package netfault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer answers every request with a fixed body and reports how
// many request bodies it received in full.
func echoServer(t *testing.T, respBody string) (*httptest.Server, *int, *int) {
	t.Helper()
	full := 0
	truncated := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, err := io.Copy(io.Discard, r.Body)
		if err != nil {
			truncated++
		} else {
			full++
		}
		// Best-effort response write; cut tests sever the wire.
		_, _ = io.WriteString(w, respBody)
	}))
	t.Cleanup(ts.Close)
	return ts, &full, &truncated
}

func TestTransportPassthroughCounts(t *testing.T) {
	ts, full, _ := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	client := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("hello"))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		// Drained above; close released the connection for reuse.
		_ = resp.Body.Close()
		if string(body) != "ok" {
			t.Fatalf("request %d: body %q", i, body)
		}
	}
	if tr.Requests() != 3 {
		t.Fatalf("Requests() = %d, want 3", tr.Requests())
	}
	if *full != 3 {
		t.Fatalf("server saw %d full bodies, want 3", *full)
	}
	if got := tr.Trace(); len(got) != 3 || !strings.HasPrefix(got[0], "POST ") {
		t.Fatalf("trace = %q", got)
	}
}

func TestTransportRefuseWindow(t *testing.T) {
	ts, _, _ := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeRefuse, Nth: 2, Count: 2})
	client := &http.Client{Transport: tr}
	for i := 1; i <= 4; i++ {
		resp, err := client.Get(ts.URL)
		refused := i == 2 || i == 3
		if refused {
			if err == nil || !errors.Is(err, ErrRefused) || !errors.Is(err, ErrInjected) {
				t.Fatalf("request %d: err = %v, want ErrRefused", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
}

func TestTransportPersistentRefuse(t *testing.T) {
	ts, _, _ := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeRefuse, Nth: 1, Count: -1})
	client := &http.Client{Transport: tr}
	for i := 0; i < 5; i++ {
		if _, err := client.Get(ts.URL); !errors.Is(err, ErrRefused) {
			t.Fatalf("request %d: err = %v, want persistent ErrRefused", i, err)
		}
	}
}

func TestTransportCutRequest(t *testing.T) {
	ts, full, truncated := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeCutRequest, Nth: 1, AfterBytes: 3})
	client := &http.Client{Transport: tr}
	_, err := client.Post(ts.URL, "text/plain", strings.NewReader("hello world"))
	if err == nil || !errors.Is(err, ErrRequestCut) {
		t.Fatalf("err = %v, want ErrRequestCut", err)
	}
	// The retry goes through untouched.
	resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("hello world"))
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if *full != 1 {
		t.Fatalf("server saw %d full bodies, want exactly the retry", *full)
	}
	_ = truncated // the server may or may not observe the aborted first attempt
}

func TestTransportCutResponse(t *testing.T) {
	ts, _, _ := echoServer(t, "a longer response body")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeCutResponse, Nth: 1, AfterBytes: 4})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("round trip should succeed before the body cut: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !errors.Is(err, ErrResponseCut) {
		t.Fatalf("read err = %v, want ErrResponseCut", err)
	}
	if string(body) != "a lo" {
		t.Fatalf("torn prefix = %q, want first 4 bytes", body)
	}
}

func TestTransportStatusWithRetryAfter(t *testing.T) {
	ts, _, _ := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeStatus, Nth: 1, Status: http.StatusServiceUnavailable, RetryAfterSec: 7})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("synthesized response should not error: %v", err)
	}
	defer func() {
		// Drained below.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "503") {
		t.Fatalf("body = %q", body)
	}
}

func TestTransportLatency(t *testing.T) {
	ts, _, _ := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeLatency, Nth: 1, Delay: 30 * time.Millisecond})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("latency fault should not fail the request: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 30ms of injected latency", elapsed)
	}
}

func TestTransportPathAndMethodMatch(t *testing.T) {
	ts, _, _ := echoServer(t, "ok")
	tr := NewTransport(nil, 1)
	tr.AddFault(Fault{Mode: ModeRefuse, Method: http.MethodPost, Path: "/commit", Nth: 1})
	client := &http.Client{Transport: tr}
	// A GET to the matching path and a POST elsewhere both pass.
	for _, f := range []func() (*http.Response, error){
		func() (*http.Response, error) { return client.Get(ts.URL + "/commit") },
		func() (*http.Response, error) { return client.Post(ts.URL+"/other", "text/plain", nil) },
	} {
		resp, err := f()
		if err != nil {
			t.Fatalf("non-matching request refused: %v", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	if _, err := client.Post(ts.URL+"/commit", "text/plain", nil); !errors.Is(err, ErrRefused) {
		t.Fatalf("matching POST: err = %v, want ErrRefused", err)
	}
}

func TestTransportSeededCutDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		var offsets [2]int64
		for round := 0; round < 2; round++ {
			tr := NewTransport(nil, seed)
			tr.AddFault(Fault{Mode: ModeCutResponse, Nth: 1, AfterBytes: -1})
			d := tr.check(httptest.NewRequest(http.MethodGet, "/x", nil))
			if d.fault == nil {
				t.Fatal("fault did not fire")
			}
			offsets[round] = d.cut
		}
		if offsets[0] != offsets[1] {
			t.Fatalf("seed %d: offsets %d != %d, want deterministic draw", seed, offsets[0], offsets[1])
		}
	}
}

func TestWrapListenerCutsWrite(t *testing.T) {
	// A real HTTP server behind a listener that severs the second
	// connection after 32 response bytes: the client sees a genuinely
	// torn wire, not a simulated one.
	inner := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, strings.Repeat("x", 4096))
	}))
	inner.Listener = WrapListener(inner.Listener, ConnFault{Nth: 2, ReadAfter: -1, WriteAfter: 32})
	inner.Start()
	defer inner.Close()

	get := func() (int, error) {
		// One connection per request, so the accept counter is the
		// request counter.
		c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := c.Get(inner.URL)
		if err != nil {
			return 0, err
		}
		defer func() {
			// Read to the failure point below; nothing left to drain.
			_ = resp.Body.Close()
		}()
		body, err := io.ReadAll(resp.Body)
		return len(body), err
	}

	if n, err := get(); err != nil || n != 4096 {
		t.Fatalf("first connection: n=%d err=%v, want full body", n, err)
	}
	if _, err := get(); err == nil {
		t.Fatal("second connection survived the scheduled wire cut")
	}
	if n, err := get(); err != nil || n != 4096 {
		t.Fatalf("third connection: n=%d err=%v, want full body", n, err)
	}
}
