// Package netfault is deterministic fault injection for the wire: the
// faultfs philosophy (internal/faultfs) applied to HTTP exchanges and
// TCP connections instead of filesystem operations. Tests wrap a
// client's http.RoundTripper in a Transport (or a server's listener in
// WrapListener) and schedule faults — cut the connection after N bytes
// of request or response body, inject latency, synthesize bare 5xx
// responses, refuse connections for a window of requests — then assert
// that the retrying client and the store's idempotent commit path
// converge to the same bytes a fault-free run produces.
//
// Like faultfs, scheduling is count-then-inject: a first fault-free run
// records how many requests an exchange performs (Requests), and a
// second run can then sever the wire at each of them in turn. All
// randomness (the offset of an unpinned cut) comes from the seeded rng
// handed to NewTransport, so every schedule replays identically.
package netfault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every error this package injects;
// errors.Is(err, ErrInjected) distinguishes scheduled faults from real
// network failures in test assertions.
var ErrInjected = errors.New("netfault: injected failure")

// ErrRefused reports a request that hit a scheduled connection-refused
// window. It wraps ErrInjected.
var ErrRefused = fmt.Errorf("%w: connection refused", ErrInjected)

// ErrRequestCut reports a connection severed while the request body was
// still being sent. It wraps ErrInjected.
var ErrRequestCut = fmt.Errorf("%w: connection cut mid-request", ErrInjected)

// ErrResponseCut reports a connection severed while the response body
// was still arriving. It wraps ErrInjected.
var ErrResponseCut = fmt.Errorf("%w: connection cut mid-response", ErrInjected)

// Mode selects how a matched fault manifests.
type Mode uint8

// The fault modes.
const (
	// ModeRefuse fails the round trip outright with ErrRefused, before
	// any bytes reach the server — a connection-refused window.
	ModeRefuse Mode = iota
	// ModeCutRequest severs the connection after AfterBytes of the
	// request body have been sent: the server sees a truncated body,
	// the client sees a transport error and never learns the outcome.
	ModeCutRequest
	// ModeCutResponse lets the request complete server-side, then
	// severs the connection after AfterBytes of the response body: the
	// operation may have applied, but the client cannot tell — the case
	// that makes idempotent retries mandatory.
	ModeCutResponse
	// ModeStatus synthesizes a bare (non-JSON) response with Status and
	// optional Retry-After, without touching the network — an
	// intermediary's 5xx, not the daemon's structured error.
	ModeStatus
	// ModeLatency delays the round trip by Delay, then proceeds.
	ModeLatency
)

// modeNames must match the Mode constant order above.
var modeNames = []string{"refuse", "cut-request", "cut-response", "status", "latency"}

// String returns the mode's trace name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "unknown"
}

// Fault is one scheduled wire failure: requests matching Method and
// Path (substring; empty matches everything) are counted, and the
// Nth through Nth+Count-1 of them manifest per Mode.
type Fault struct {
	// Method matches the request method exactly; empty matches all.
	Method string
	// Path is a substring match against the request URL path; empty
	// matches every request.
	Path string
	// Nth is the first matching request (1-based) the fault fires on.
	Nth int
	// Count is how many consecutive matching requests the fault fires
	// on: 0 means 1, negative means every request from Nth onward — a
	// persistent outage window.
	Count int
	// Mode selects the failure (refuse, cut, status, latency).
	Mode Mode
	// AfterBytes is how many body bytes a cut lets through first.
	// Negative draws a small seeded offset, so schedules need not know
	// body sizes.
	AfterBytes int64
	// Status is the synthesized response code for ModeStatus.
	Status int
	// RetryAfterSec, when positive, adds a Retry-After header to a
	// ModeStatus response.
	RetryAfterSec int
	// Delay is the injected latency for ModeLatency.
	Delay time.Duration

	seen int // matching requests observed so far
}

// fires reports whether the fault manifests on its seen-th match.
func (f *Fault) fires() bool {
	if f.seen < f.Nth {
		return false
	}
	if f.Count < 0 {
		return true
	}
	count := f.Count
	if count == 0 {
		count = 1
	}
	return f.seen < f.Nth+count
}

// Transport is an http.RoundTripper that injects scheduled wire faults
// between a client and its real transport. The zero schedule passes
// every request through while counting it, so a first run measures how
// many requests an exchange performs and a second run can sever each
// one in turn.
type Transport struct {
	// Inner is the real transport; nil uses http.DefaultTransport.
	Inner http.RoundTripper

	mu     sync.Mutex
	rng    *rand.Rand
	reqs   int
	faults []*Fault
	trace  []string
}

// NewTransport wraps inner with a seeded fault schedule. The seed only
// feeds unpinned cut offsets (AfterBytes < 0), so two transports with
// the same seed and schedule inject identically.
func NewTransport(inner http.RoundTripper, seed int64) *Transport {
	return &Transport{Inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// AddFault schedules a fault. Faults are matched in the order added;
// the first that fires on a request decides it.
func (t *Transport) AddFault(f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = append(t.faults, &f)
}

// Requests returns how many round trips have been observed (attempted,
// whether or not they were failed).
func (t *Transport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reqs
}

// Trace returns the recorded request log, one "METHOD path decision"
// line per observed round trip.
func (t *Transport) Trace() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.trace...)
}

// decision is what check tells RoundTrip to do.
type decision struct {
	fault *Fault
	cut   int64 // resolved AfterBytes for the cut modes
}

// check records one request and decides its fate.
func (t *Transport) check(req *http.Request) decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reqs++
	d := decision{}
	for _, f := range t.faults {
		if f.Method != "" && f.Method != req.Method {
			continue
		}
		if f.Path != "" && !strings.Contains(req.URL.Path, f.Path) {
			continue
		}
		f.seen++
		if d.fault == nil && f.fires() {
			d.fault = f
			d.cut = f.AfterBytes
			if d.cut < 0 {
				d.cut = t.rng.Int63n(4096)
			}
		}
	}
	line := req.Method + " " + req.URL.Path
	if d.fault != nil {
		line += " " + d.fault.Mode.String()
	}
	t.trace = append(t.trace, line)
	return d
}

// RoundTrip implements http.RoundTripper with the fault schedule
// applied.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.check(req)
	if d.fault == nil {
		return t.inner().RoundTrip(req)
	}
	switch d.fault.Mode {
	case ModeRefuse:
		closeBody(req)
		return nil, ErrRefused
	case ModeStatus:
		closeBody(req)
		return synthesize(req, d.fault), nil
	case ModeLatency:
		time.Sleep(d.fault.Delay)
		return t.inner().RoundTrip(req)
	case ModeCutRequest:
		if req.Body == nil {
			// No body to cut: the connection dies before the response.
			return nil, ErrRequestCut
		}
		wrapped := req.Clone(req.Context())
		wrapped.Body = &cutReader{rc: req.Body, remaining: d.cut, err: ErrRequestCut}
		// A body that errors mid-send aborts the exchange; the server
		// sees the truncation, the client sees the wrapped error.
		resp, err := t.inner().RoundTrip(wrapped)
		if err != nil {
			return nil, fmt.Errorf("%w (transport: %v)", ErrRequestCut, err)
		}
		// The server answered from the truncated prefix alone (it never
		// needed the rest); pass its verdict through.
		return resp, nil
	case ModeCutResponse:
		resp, err := t.inner().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &cutReader{rc: resp.Body, remaining: d.cut, err: ErrResponseCut}
		return resp, nil
	default:
		closeBody(req)
		return nil, ErrInjected
	}
}

// inner returns the real transport.
func (t *Transport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

// closeBody releases a request body the fault never sent.
func closeBody(req *http.Request) {
	if req.Body != nil {
		// The exchange is already the injected failure; a close error
		// on the unsent body has nothing to add.
		_ = req.Body.Close()
	}
}

// synthesize builds a ModeStatus response: a bare text body, not the
// daemon's structured JSON — what a load balancer or proxy would emit.
func synthesize(req *http.Request, f *Fault) *http.Response {
	body := "netfault: injected " + strconv.Itoa(f.Status)
	h := http.Header{"Content-Type": []string{"text/plain"}}
	if f.RetryAfterSec > 0 {
		h.Set("Retry-After", strconv.Itoa(f.RetryAfterSec))
	}
	return &http.Response{
		Status:        strconv.Itoa(f.Status) + " " + http.StatusText(f.Status),
		StatusCode:    f.Status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// cutReader delivers a byte-limited prefix of an underlying body, then
// fails with the scheduled error — a connection severed mid-stream.
type cutReader struct {
	rc        io.ReadCloser
	remaining int64
	err       error
	closed    bool
}

// Read implements io.Reader: bytes flow until the budget is spent,
// then every read fails with the cut error.
func (c *cutReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		// Sever the underlying stream too, so a retrying caller cannot
		// accidentally keep draining the doomed connection.
		c.close()
		return 0, c.err
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, err
	}
	if errors.Is(err, io.EOF) {
		// The body ended inside the budget: the cut never happened.
		return n, io.EOF
	}
	return n, nil
}

// Close implements io.Closer.
func (c *cutReader) Close() error {
	c.close()
	return nil
}

// close closes the underlying body once.
func (c *cutReader) close() {
	if c.closed {
		return
	}
	c.closed = true
	// The stream is being abandoned mid-flight; the close error adds
	// nothing to the injected failure.
	_ = c.rc.Close()
}
