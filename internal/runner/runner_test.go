package runner

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"numarck/internal/adaptive"
	"numarck/internal/anomaly"
	"numarck/internal/checkpoint"
	"numarck/internal/core"
)

// toySim is a deterministic two-variable simulation: each variable
// drifts multiplicatively per step, derived from a counter so State is
// a pure function of the step.
type toySim struct {
	step    int
	n       int
	corrupt func(step int, state map[string][]float64) // optional fault hook
	failAt  int                                        // Advance error injection (0 = never)
}

func newToySim(n int) *toySim { return &toySim{n: n} }

func (s *toySim) Advance() error {
	if s.failAt > 0 && s.step+1 >= s.failAt {
		return errors.New("toy sim crashed")
	}
	s.step++
	return nil
}

func (s *toySim) value(varIdx, step, j int) float64 {
	base := 100 + float64(varIdx)*50 + float64(j%17)
	// ~1 % drift per step: far above NUMARCK's accumulated 0.1 %-bound
	// error, so Restore can identify the step unambiguously.
	drift := 1 + 0.01*math.Sin(float64(step)*0.3+float64(j)*0.01)
	return base * math.Pow(drift, float64(step))
}

func (s *toySim) State() map[string][]float64 {
	out := map[string][]float64{}
	for vi, name := range []string{"alpha", "beta"} {
		data := make([]float64, s.n)
		for j := range data {
			data[j] = s.value(vi, s.step, j)
		}
		out[name] = data
	}
	if s.corrupt != nil {
		s.corrupt(s.step, out)
	}
	return out
}

func (s *toySim) Restore(state map[string][]float64) error {
	if _, ok := state["alpha"]; !ok {
		return errors.New("missing alpha")
	}
	// The toy sim is a pure function of step; restoring means
	// recovering the step from the (approximated) data. Identify the
	// step by nearest fit over a handful of points, so NUMARCK's
	// bounded reconstruction error cannot mislead it.
	probe := state["alpha"]
	nProbe := 50
	if nProbe > len(probe) {
		nProbe = len(probe)
	}
	bestStep, bestSSE := -1, math.Inf(1)
	for step := 0; step < 200; step++ {
		var sse float64
		for j := 0; j < nProbe; j++ {
			d := (s.value(0, step, j) - probe[j]) / probe[j]
			sse += d * d
		}
		if sse < bestSSE {
			bestStep, bestSSE = step, sse
		}
	}
	if bestStep < 0 || bestSSE > 1e-2 {
		return errors.New("state does not match any step")
	}
	s.step = bestStep
	return nil
}

func opts() core.Options {
	return core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering}
}

func newStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.Create(filepath.Join(t.TempDir(), "ck"), opts())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunFixedMode(t *testing.T) {
	st := newStore(t)
	r := New(newToySim(500), st, Config{FullEvery: 4})
	rep, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstIteration != 0 || rep.LastIteration != 9 {
		t.Errorf("iteration range [%d,%d]", rep.FirstIteration, rep.LastIteration)
	}
	// Fulls at 0, 4, 8 for both variables.
	if rep.Fulls != 6 {
		t.Errorf("fulls = %d, want 6", rep.Fulls)
	}
	if rep.Deltas != 14 {
		t.Errorf("deltas = %d, want 14", rep.Deltas)
	}
	// Everything restores.
	for _, v := range []string{"alpha", "beta"} {
		if _, err := st.Restart(v, 9); err != nil {
			t.Errorf("restart %s: %v", v, err)
		}
	}
}

func TestRunAdaptiveMode(t *testing.T) {
	st := newStore(t)
	cfg := adaptive.Config{ErrorBudget: 0.01}
	r := New(newToySim(500), st, Config{Adaptive: &cfg})
	rep, err := r.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fulls < 2 { // at least the mandatory firsts
		t.Errorf("fulls = %d", rep.Fulls)
	}
	if rep.Fulls+rep.Deltas != 16 {
		t.Errorf("total checkpoints = %d, want 16", rep.Fulls+rep.Deltas)
	}
}

func TestRunRejectsBadIterations(t *testing.T) {
	st := newStore(t)
	r := New(newToySim(10), st, Config{})
	if _, err := r.Run(0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestRunPropagatesAdvanceError(t *testing.T) {
	st := newStore(t)
	sim := newToySim(100)
	sim.failAt = 3
	r := New(sim, st, Config{})
	rep, err := r.Run(10)
	if err == nil {
		t.Fatal("crash not propagated")
	}
	if rep.LastIteration != 1 {
		t.Errorf("last completed iteration %d, want 1", rep.LastIteration)
	}
}

func TestCrashRecoverContinue(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := checkpoint.Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: run 6 iterations, then "crash" (drop the runner).
	sim1 := newToySim(400)
	r1 := New(sim1, st, Config{FullEvery: 0})
	if _, err := r1.Run(6); err != nil {
		t.Fatal(err)
	}
	// The "crash" drops the runner; release the writer lock as a real
	// process death would.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: fresh store handle, fresh sim, recover.
	st2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sim2 := newToySim(400)
	r2 := New(sim2, st2, Config{FullEvery: 0})
	recovered, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 5 {
		t.Errorf("recovered at %d, want 5", recovered)
	}
	// Checkpoint iteration i holds the state after advance i+1, so
	// recovering iteration 5 restores sim step 6.
	if sim2.step != 6 {
		t.Errorf("sim restored to step %d, want 6", sim2.step)
	}
	if r2.NextIteration() != 6 {
		t.Errorf("next iteration %d", r2.NextIteration())
	}
	// Continue: the chain must extend seamlessly.
	rep, err := r2.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIteration != 9 {
		t.Errorf("continued to %d", rep.LastIteration)
	}
	// The full 10-iteration history restores and matches the golden
	// trajectory within the accumulated bound.
	golden := newToySim(400)
	for i := 0; i < 10; i++ {
		golden.Advance()
	}
	want := golden.State()
	got, err := st2.Restart("alpha", 9)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		rel := math.Abs(got[j]-want["alpha"][j]) / want["alpha"][j]
		if rel > 0.02 {
			t.Fatalf("point %d relative error %v after crash-recover-continue", j, rel)
		}
	}
}

func TestRecoverAdaptiveMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := checkpoint.Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	cfg := adaptive.Config{ErrorBudget: 0.01}
	r1 := New(newToySim(300), st, Config{Adaptive: &cfg})
	if _, err := r1.Run(5); err != nil {
		t.Fatal(err)
	}
	sim2 := newToySim(300)
	r2 := New(sim2, st, Config{Adaptive: &cfg})
	recovered, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 4 {
		t.Errorf("recovered %d", recovered)
	}
	rep, err := r2.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Post-recovery, the first checkpoint of each variable is full.
	if rep.Fulls < 2 {
		t.Errorf("post-recovery fulls = %d", rep.Fulls)
	}
}

func TestRecoverEmptyStore(t *testing.T) {
	st := newStore(t)
	r := New(newToySim(10), st, Config{})
	if _, err := r.Recover(); !errors.Is(err, checkpoint.ErrNotFound) {
		t.Errorf("empty store recover: %v", err)
	}
}

func TestMonitorCatchesInjectedCorruption(t *testing.T) {
	st := newStore(t)
	sim := newToySim(2000)
	rng := rand.New(rand.NewSource(1))
	sim.corrupt = func(step int, state map[string][]float64) {
		if step == 7 {
			idx := rng.Intn(2000)
			if _, err := anomaly.InjectBitFlip(state["alpha"], idx, 61); err != nil {
				panic(err)
			}
		}
	}
	mon := anomaly.Config{}
	r := New(sim, st, Config{Monitor: &mon})
	rep, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range rep.Anomalies {
		if ev.Variable == "alpha" && ev.Iteration == 7 && ev.FlaggedCount > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("injected corruption not reported: %+v", rep.Anomalies)
	}
}

func TestHaltOnAnomaly(t *testing.T) {
	st := newStore(t)
	sim := newToySim(2000)
	sim.corrupt = func(step int, state map[string][]float64) {
		if step == 6 {
			if _, err := anomaly.InjectBitFlip(state["beta"], 123, 62); err != nil {
				panic(err)
			}
		}
	}
	mon := anomaly.Config{}
	r := New(sim, st, Config{Monitor: &mon, HaltOnAnomaly: true})
	_, err := r.Run(10)
	if !errors.Is(err, ErrAnomaly) {
		t.Errorf("halt error = %v", err)
	}
}

func TestCleanRunNoAnomalies(t *testing.T) {
	st := newStore(t)
	mon := anomaly.Config{}
	r := New(newToySim(2000), st, Config{Monitor: &mon})
	rep, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Anomalies) != 0 {
		t.Errorf("clean run reported anomalies: %+v", rep.Anomalies)
	}
}
