package runner

import (
	"math"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/sim/flash"
)

func TestFlashAdapterEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := checkpoint.Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := flash.New(flash.Config{BlocksX: 2, BlocksY: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(NewFlashSim(sim, 2), st, Config{FullEvery: 0})
	rep, err := r.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fulls != 10 { // 10 variables, first iteration full
		t.Errorf("fulls = %d", rep.Fulls)
	}
	if rep.Deltas != 40 { // 10 variables x 4 delta iterations
		t.Errorf("deltas = %d", rep.Deltas)
	}

	// Crash: recover into a fresh solver and continue.
	sim2, err := flash.New(flash.Config{BlocksX: 2, BlocksY: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(NewFlashSim(sim2, 2), st, Config{FullEvery: 0})
	recovered, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 4 {
		t.Errorf("recovered at %d", recovered)
	}
	if _, err := r2.Run(3); err != nil {
		t.Fatal(err)
	}
	// All 10 variables restore at the final iteration with finite,
	// physical values.
	for _, v := range flash.Variables {
		data, err := st.Restart(v, 7)
		if err != nil {
			t.Fatalf("restart %s: %v", v, err)
		}
		for i, x := range data {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s[%d] = %v after recover-continue", v, i, x)
			}
		}
	}
}

func TestFlashAdapterDefaults(t *testing.T) {
	sim, err := flash.New(flash.Config{BlocksX: 2, BlocksY: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFlashSim(sim, 0)
	if f.StepsPerCheckpoint != 3 {
		t.Errorf("default steps = %d", f.StepsPerCheckpoint)
	}
	if err := f.Advance(); err != nil {
		t.Fatal(err)
	}
	if sim.StepCount() != 3 {
		t.Errorf("step count = %d", sim.StepCount())
	}
	state := f.State()
	if len(state) != 10 {
		t.Errorf("%d variables", len(state))
	}
}
