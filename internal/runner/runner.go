// Package runner is the checkpoint/restart orchestration layer the
// paper's introduction asks for ("How do we engineer scalable software
// for storing, replaying, and restarting simulations?", §I Q6). It
// drives any iterative Simulator, writes NUMARCK checkpoints after
// every iteration — with either a fixed full-checkpoint period or the
// adaptive scheduler — optionally screens each checkpoint for silent
// data corruption before it is persisted, and recovers a crashed
// simulation from the latest restorable iteration in the store.
package runner

import (
	"errors"
	"fmt"

	"numarck/internal/adaptive"
	"numarck/internal/anomaly"
	"numarck/internal/checkpoint"
)

// Simulator is an iterative simulation the runner can drive.
// Implementations adapt concrete codes (e.g. the FLASH-like solver) to
// the runner.
type Simulator interface {
	// Advance runs the simulation to its next checkpoint boundary.
	Advance() error
	// State returns the current value arrays of every variable. The
	// runner does not mutate the returned slices.
	State() map[string][]float64
	// Restore overwrites the simulation state from value arrays (the
	// inverse of State; values may be NUMARCK reconstructions).
	Restore(state map[string][]float64) error
}

// Config configures a Runner.
type Config struct {
	// FullEvery is the fixed full-checkpoint period. Ignored when
	// Adaptive is non-nil. <= 0 means only the first checkpoint is
	// full.
	FullEvery int
	// Adaptive switches to the dynamic scheduler with this
	// configuration.
	Adaptive *adaptive.Config
	// Monitor enables SDC screening of every checkpoint with this
	// anomaly-detector configuration (one detector per variable).
	Monitor *anomaly.Config
	// HaltOnAnomaly stops Run with ErrAnomaly instead of recording
	// the report and continuing.
	HaltOnAnomaly bool
}

// ErrAnomaly reports that the monitor flagged a checkpoint and the
// runner was configured to halt.
var ErrAnomaly = errors.New("runner: anomaly detected")

// AnomalyEvent records a monitor hit during Run.
type AnomalyEvent struct {
	Iteration    int
	Variable     string
	FlaggedCount int
	Divergence   float64
	Alarm        bool
}

// Report summarizes a Run call.
type Report struct {
	// FirstIteration and LastIteration bound the checkpoints written.
	FirstIteration, LastIteration int
	// Fulls and Deltas count checkpoint kinds across variables.
	Fulls, Deltas int
	// Anomalies lists monitor hits.
	Anomalies []AnomalyEvent
}

// Runner drives a Simulator against a checkpoint store.
type Runner struct {
	sim   Simulator
	st    *checkpoint.Store
	cfg   Config
	next  int // next iteration index to write
	fixed *checkpoint.Writer
	adapt *adaptive.Writer
	mons  map[string]*anomaly.Detector
	last  map[string][]float64
}

// New creates a runner writing into st starting at iteration 0.
func New(sim Simulator, st *checkpoint.Store, cfg Config) *Runner {
	r := &Runner{
		sim:  sim,
		st:   st,
		cfg:  cfg,
		mons: map[string]*anomaly.Detector{},
		last: map[string][]float64{},
	}
	if cfg.Adaptive != nil {
		r.adapt = adaptive.NewWriter(st, *cfg.Adaptive)
	} else {
		r.fixed = checkpoint.NewWriter(st, cfg.FullEvery)
	}
	return r
}

// NextIteration returns the iteration index the next checkpoint will
// use.
func (r *Runner) NextIteration() int { return r.next }

// Run advances the simulation `iterations` times, checkpointing after
// each advance. It returns a report of what was written.
func (r *Runner) Run(iterations int) (*Report, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("runner: iterations must be >= 1, got %d", iterations)
	}
	rep := &Report{FirstIteration: r.next}
	for k := 0; k < iterations; k++ {
		if err := r.sim.Advance(); err != nil {
			return rep, fmt.Errorf("runner: advance at iteration %d: %w", r.next, err)
		}
		state := r.sim.State()

		if r.cfg.Monitor != nil {
			if err := r.screen(state, rep); err != nil {
				return rep, err
			}
		}
		if err := r.write(state, rep); err != nil {
			return rep, err
		}
		for v, data := range state {
			r.last[v] = append(r.last[v][:0], data...)
		}
		rep.LastIteration = r.next
		r.next++
	}
	return rep, nil
}

// screen feeds the state to the per-variable anomaly detectors.
func (r *Runner) screen(state map[string][]float64, rep *Report) error {
	for v, data := range state {
		prev, ok := r.last[v]
		if !ok {
			continue // first sight of this variable
		}
		det := r.mons[v]
		if det == nil {
			det = anomaly.New(*r.cfg.Monitor)
			r.mons[v] = det
		}
		arep, err := det.Observe(prev, data)
		if err != nil {
			return fmt.Errorf("runner: monitor %s@%d: %w", v, r.next, err)
		}
		if len(arep.Flagged) > 0 || arep.DistributionAlarm {
			rep.Anomalies = append(rep.Anomalies, AnomalyEvent{
				Iteration:    r.next,
				Variable:     v,
				FlaggedCount: len(arep.Flagged),
				Divergence:   arep.Divergence,
				Alarm:        arep.DistributionAlarm,
			})
			if r.cfg.HaltOnAnomaly {
				return fmt.Errorf("%w: %s@%d (%d points, JS %.4f)",
					ErrAnomaly, v, r.next, len(arep.Flagged), arep.Divergence)
			}
		}
	}
	return nil
}

// write persists the state through the configured writer.
func (r *Runner) write(state map[string][]float64, rep *Report) error {
	if r.adapt != nil {
		decs, err := r.adapt.Append(r.next, state)
		if err != nil {
			return err
		}
		for _, d := range decs {
			if d.Full {
				rep.Fulls++
			} else {
				rep.Deltas++
			}
		}
		return nil
	}
	encs, err := r.fixed.Append(r.next, state)
	if err != nil {
		return err
	}
	rep.Deltas += len(encs)
	rep.Fulls += len(state) - len(encs)
	return nil
}

// Recover finds the latest iteration every variable can be
// reconstructed at, restores the simulation from it, and positions the
// runner to continue writing at the following iteration. It returns
// the recovered iteration. Use it on a fresh Runner over an existing
// store after a crash.
func (r *Runner) Recover() (int, error) {
	vars, err := r.st.Variables()
	if err != nil {
		return 0, err
	}
	if len(vars) == 0 {
		return 0, fmt.Errorf("runner: store is empty: %w", checkpoint.ErrNotFound)
	}
	target := -1
	for _, v := range vars {
		latest, err := r.st.LatestRestorable(v)
		if err != nil {
			return 0, err
		}
		if target < 0 || latest < target {
			target = latest
		}
	}
	state := make(map[string][]float64, len(vars))
	for _, v := range vars {
		data, err := r.st.Restart(v, target)
		if err != nil {
			return 0, err
		}
		state[v] = data
	}
	if err := r.sim.Restore(state); err != nil {
		return 0, fmt.Errorf("runner: restore at iteration %d: %w", target, err)
	}
	for v, data := range state {
		r.last[v] = append([]float64(nil), data...)
	}
	r.next = target + 1
	// Continuing an existing store requires consecutive iterations;
	// rebuild the writer chains from the recovered state.
	if r.adapt != nil {
		r.adapt = adaptive.NewWriterAt(r.st, *r.cfg.Adaptive, target, state)
	} else {
		r.fixed = checkpoint.NewWriterAt(r.st, r.cfg.FullEvery, target, state)
	}
	return target, nil
}
