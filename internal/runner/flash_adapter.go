package runner

import (
	"numarck/internal/sim/flash"
)

// FlashSim adapts the FLASH-like solver to the Simulator interface:
// one Advance equals StepsPerCheckpoint solver steps, and State/Restore
// map to the solver's 10-variable checkpoints.
type FlashSim struct {
	Sim *flash.Sim
	// StepsPerCheckpoint is how many solver steps one runner iteration
	// advances (default 3, the experiments' cadence).
	StepsPerCheckpoint int
}

// NewFlashSim wraps a solver.
func NewFlashSim(sim *flash.Sim, stepsPerCheckpoint int) *FlashSim {
	if stepsPerCheckpoint <= 0 {
		stepsPerCheckpoint = 3
	}
	return &FlashSim{Sim: sim, StepsPerCheckpoint: stepsPerCheckpoint}
}

// Advance runs the solver to the next checkpoint boundary.
func (f *FlashSim) Advance() error {
	f.Sim.StepN(f.StepsPerCheckpoint)
	return nil
}

// State captures the current checkpoint variables.
func (f *FlashSim) State() map[string][]float64 {
	return f.Sim.Checkpoint().Vars
}

// Restore overwrites the solver state from (possibly reconstructed)
// checkpoint variables. Step and time metadata are not part of the
// runner's state model; the solver keeps its own counters, which only
// affect labels, not physics.
func (f *FlashSim) Restore(state map[string][]float64) error {
	return f.Sim.Restart(&flash.Snapshot{
		Step: f.Sim.StepCount(),
		Time: f.Sim.Time(),
		Vars: state,
	})
}
