package numarck

import (
	"errors"
	"fmt"

	"numarck/internal/core"
)

// Series is an in-memory compressed iteration series: the exact first
// iteration plus one Encoded delta per subsequent iteration. It is the
// file-less counterpart of the checkpoint Store for pipelines that
// post-process whole runs in memory (in-situ analysis, §V).
type Series struct {
	// First is the exact first iteration.
	First []float64
	// Deltas[i] encodes the transition from iteration i to i+1.
	Deltas []*Encoded
}

// ErrSeries reports an invalid series operation.
var ErrSeries = errors.New("numarck: invalid series")

// CompressSeries encodes consecutive iterations. Each delta is computed
// against the true previous iteration, as in in-situ checkpointing.
func CompressSeries(iterations [][]float64, opt Options) (*Series, error) {
	if len(iterations) == 0 {
		return nil, fmt.Errorf("%w: no iterations", ErrSeries)
	}
	s := &Series{First: append([]float64(nil), iterations[0]...)}
	for i := 1; i < len(iterations); i++ {
		enc, err := core.Encode(iterations[i-1], iterations[i], opt)
		if err != nil {
			return nil, fmt.Errorf("numarck: iteration %d: %w", i, err)
		}
		s.Deltas = append(s.Deltas, enc)
	}
	return s, nil
}

// Len returns the number of iterations the series holds.
func (s *Series) Len() int { return 1 + len(s.Deltas) }

// Reconstruct returns iteration i by replaying deltas on top of the
// first iteration — the restart semantics of §II-D, so error
// accumulates with i within the per-step bound.
func (s *Series) Reconstruct(i int) ([]float64, error) {
	if i < 0 || i >= s.Len() {
		return nil, fmt.Errorf("%w: iteration %d of %d", ErrSeries, i, s.Len())
	}
	data := append([]float64(nil), s.First...)
	for k := 0; k < i; k++ {
		var err error
		data, err = s.Deltas[k].Decode(data)
		if err != nil {
			return nil, fmt.Errorf("numarck: replaying delta %d: %w", k, err)
		}
	}
	return data, nil
}

// ReconstructAll returns every iteration, replaying the chain once.
func (s *Series) ReconstructAll() ([][]float64, error) {
	out := make([][]float64, s.Len())
	out[0] = append([]float64(nil), s.First...)
	data := out[0]
	for k, enc := range s.Deltas {
		var err error
		data, err = enc.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("numarck: replaying delta %d: %w", k, err)
		}
		out[k+1] = data
	}
	return out, nil
}

// Validate checks the series' structural invariants without decoding:
// a non-empty first iteration, no nil deltas, and every delta sized to
// the series' point count. A series that fails Validate will fail (or
// silently corrupt) Reconstruct; calling it after deserializing or
// assembling a Series by hand catches the damage up front.
func (s *Series) Validate() error {
	if len(s.First) == 0 {
		return fmt.Errorf("%w: empty first iteration", ErrSeries)
	}
	for k, enc := range s.Deltas {
		if enc == nil {
			return fmt.Errorf("%w: delta %d is nil", ErrSeries, k)
		}
		if enc.N != len(s.First) {
			return fmt.Errorf("%w: delta %d encodes %d points, series has %d", ErrSeries, k, enc.N, len(s.First))
		}
	}
	return nil
}

// StorageBytes returns the in-memory storage model of the series: the
// raw first iteration plus each delta's encoded payload.
func (s *Series) StorageBytes() int {
	total := 8 * len(s.First)
	for _, enc := range s.Deltas {
		total += enc.EncodedSizeBytes()
	}
	return total
}

// CompressionRatio returns the percent saving over storing every
// iteration raw.
func (s *Series) CompressionRatio() float64 {
	raw := 8 * len(s.First) * s.Len()
	if raw == 0 {
		return 0
	}
	return float64(raw-s.StorageBytes()) / float64(raw) * 100
}
