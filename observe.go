package numarck

import "numarck/internal/obs"

// Recorder accumulates per-stage timings, counters, and gauges from
// every pipeline it is attached to (Encode, StreamEncoder,
// StreamDecoder). It is safe for concurrent use and nil-safe: a nil
// *Recorder is the valid "off" state and costs instrumented code one
// predictable branch per site. See internal/obs for the full contract.
type Recorder = obs.Recorder

// MetricsSnapshot is a point-in-time view of a Recorder, serializable
// as JSON (WriteJSON) or an aligned text table (WriteText).
type MetricsSnapshot = obs.Snapshot

// NewRecorder returns an empty Recorder anchored at the current time.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// WithRecorder returns a copy of opt that reports per-stage timings
// and counters into rec. Passing the result to Encode (or setting it
// as StreamEncoder.Opt) instruments the whole pipeline the options
// flow through:
//
//	rec := numarck.NewRecorder()
//	enc, err := numarck.Encode(prev, cur, numarck.WithRecorder(opt, rec))
//	rec.Snapshot().WriteText(os.Stderr)
func WithRecorder(opt Options, rec *Recorder) Options {
	opt.Obs = rec
	return opt
}
