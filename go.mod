module numarck

go 1.22
