// Package numarck is the public API of a from-scratch Go implementation
// of NUMARCK — the Northwestern University Machine-learning Algorithm
// for Resiliency and ChecKpointing (Chen et al., SC 2014): error-bounded
// lossy compression of iterative scientific checkpoint data.
//
// NUMARCK compresses the transition between two consecutive checkpoints
// instead of the raw values: it computes each point's relative change
// ratio, learns the distribution of those ratios with one of three
// strategies (equal-width binning, log-scale binning, or k-means
// clustering seeded from the equal-width histogram), and stores a B-bit
// bin index per point. Any point whose bin representative misses its
// true ratio by more than the user error bound E is stored exactly, so
// the bound holds point-wise by construction.
//
// Basic usage:
//
//	enc, err := numarck.Encode(prev, cur, numarck.Options{
//		ErrorBound: 0.001,           // 0.1 %
//		IndexBits:  8,               // 255 bins + reserved zero index
//		Strategy:   numarck.Clustering,
//	})
//	rec, err := enc.Decode(prev)     // every rec[i] within E of cur[i]'s ratio
//
// For chained checkpoint files with restart, use the Store:
//
//	st, err := numarck.CreateStore(dir, opts)
//	w := numarck.NewWriter(st, 10)   // full checkpoint every 10 iterations
//	w.Append(i, map[string][]float64{"dens": data})
//	state, err := st.Restart("dens", 42)
package numarck

import (
	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/faultfs"
)

// Options configures an encode. See core.Options for field docs.
type Options = core.Options

// Strategy selects the distribution-learning strategy.
type Strategy = core.Strategy

// The three approximation strategies of the paper (§II-C).
const (
	EqualWidth = core.EqualWidth
	LogScale   = core.LogScale
	Clustering = core.Clustering
)

// Strategies lists all strategies in paper order.
var Strategies = core.Strategies

// ParseStrategy converts a string ("equal-width", "log-scale",
// "clustering" and short forms) into a Strategy.
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// Encoded is one compressed checkpoint iteration.
type Encoded = core.Encoded

// Encode compresses the transition prev → cur under opt. See
// (*Encoded).Decode for reconstruction and the Gamma/MeanErrorRate/
// MaxErrorRate/CompressionRatio methods for the paper's metrics.
func Encode(prev, cur []float64, opt Options) (*Encoded, error) {
	return core.Encode(prev, cur, opt)
}

// Store is the writer handle of a directory-backed checkpoint store
// with full (lossless) and delta (NUMARCK-encoded) checkpoints and
// chained restart. Exactly one writer exists per store directory,
// enforced by an on-disk lock; release it with (*Store).Close. For
// concurrent read-only access, use OpenReadOnly.
type Store = checkpoint.Store

// ReadView is a lock-free read-only handle on a checkpoint store: it
// serves listings, stats, and restarts from the store's chain index
// without taking the writer lock or mutating anything, so any number of
// ReadViews can run alongside one live writer — even in other
// processes, even on read-only media.
type ReadView = checkpoint.ReadView

// Writer appends simulation iterations to a Store, alternating full and
// delta checkpoints.
type Writer = checkpoint.Writer

// CreateStore initializes a checkpoint store in dir and claims its
// writer lock.
func CreateStore(dir string, opt Options) (*Store, error) {
	return checkpoint.Create(dir, opt)
}

// OpenStore opens an existing checkpoint store for writing, claiming
// the store's single-writer lock (a store held by a live writer fails
// fast with an error matching ErrStoreLocked) and running the crash
// recovery scan; its findings are available from (*Store).Recovery.
func OpenStore(dir string) (*Store, error) { return checkpoint.Open(dir) }

// OpenStoreObserved is OpenStore with an instrumentation recorder: the
// recovery scan and any degraded-mode decodes report their counters
// (recovery_scans, torn_files_detected, chunks_quarantined,
// index_rebuilds, lock_takeovers) into rec.
func OpenStoreObserved(dir string, rec *Recorder) (*Store, error) {
	return checkpoint.OpenFS(dir, faultfs.OS(), rec)
}

// OpenReadOnly opens a lock-free read view of an existing store. It
// never takes the writer lock and performs no mutating filesystem
// operation (no recovery scan, no journal repair), so it succeeds while
// a writer holds the store and on read-only media.
func OpenReadOnly(dir string) (*ReadView, error) {
	return checkpoint.OpenReadOnly(dir)
}

// OpenReadOnlyObserved is OpenReadOnly with an instrumentation
// recorder: snapshot refreshes and journal-replay fallbacks report into
// rec (index_rereads, index_rebuilds).
func OpenReadOnlyObserved(dir string, rec *Recorder) (*ReadView, error) {
	return checkpoint.OpenReadOnlyFS(dir, faultfs.OS(), rec)
}

// RecoverOptions selects fail-closed (zero value) or salvage handling
// of chunk-local corruption during decode.
type RecoverOptions = checkpoint.RecoverOptions

// PartialDataError reports a salvage decode that lost data: which
// chunks failed and exactly which point index ranges hold stale values.
type PartialDataError = checkpoint.PartialDataError

// ChunkStatus is one chunk's outcome in a salvage decode.
type ChunkStatus = checkpoint.ChunkStatus

// Range is a half-open point index interval [Lo, Hi).
type Range = checkpoint.Range

// RecoveryReport summarizes what a store's Open-time recovery scan
// found and repaired.
type RecoveryReport = checkpoint.RecoveryReport

// VerifyIssue is one problem found by (*Store).Verify.
type VerifyIssue = checkpoint.VerifyIssue

// ErrStoreCorrupt matches any checkpoint corruption error, including
// *PartialDataError, via errors.Is.
var ErrStoreCorrupt = checkpoint.ErrCorrupt

// ErrStoreTruncated matches errors caused by a truncated (torn)
// checkpoint file, a quarantine candidate, via errors.Is.
var ErrStoreTruncated = checkpoint.ErrTruncated

// ErrStoreLocked matches, via errors.Is, a writer open of a store whose
// lock is held by a live writer; the concrete error is a
// *LockHeldError identifying the holder.
var ErrStoreLocked = checkpoint.ErrLocked

// LockHeldError identifies the process holding a store's writer lock.
type LockHeldError = checkpoint.LockHeldError

// ErrBadVariable matches, via errors.Is, a rejected variable name (one
// that could escape the store directory or exceed the name length
// limit) or an out-of-range iteration number.
var ErrBadVariable = checkpoint.ErrBadVariable

// IndexHealth describes a store's chain-index state (present, fresh,
// publication sequence), as reported by (*Store).IndexHealth and
// (*ReadView).IndexHealth.
type IndexHealth = checkpoint.IndexHealth

// NewWriter wraps a store for sequential appending; fullEvery is the
// full-checkpoint period (<= 0 means only the first write is full).
func NewWriter(st *Store, fullEvery int) *Writer {
	return checkpoint.NewWriter(st, fullEvery)
}
