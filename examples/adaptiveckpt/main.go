// adaptiveckpt demonstrates the paper's §V extension of dynamic
// checkpoint frequency: the scheduler watches the evolving change
// distributions and writes full checkpoints only when the delta chain's
// estimated restart error approaches the budget or deltas stop paying.
//
// The workload switches between a quiet phase and a turbulent phase, so
// a fixed full-checkpoint period would be wrong in one of them.
//
// Run with: go run ./examples/adaptiveckpt
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"numarck"
	"numarck/internal/adaptive"
	"numarck/internal/checkpoint"
)

func main() {
	dir, err := os.MkdirTemp("", "numarck-adaptive-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st, err := checkpoint.Create(dir, numarck.Options{
		ErrorBound: 0.001,
		IndexBits:  8,
		Strategy:   numarck.Clustering,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			log.Print(err)
		}
	}()
	w := adaptive.NewWriter(st, adaptive.Config{ErrorBudget: 0.005, GammaThreshold: 0.5})

	// 30 iterations: quiet (0-9), turbulent (10-14), quiet again.
	rng := rand.New(rand.NewSource(7))
	n := 5000
	data := make([]float64, n)
	for j := range data {
		data[j] = 100 + rng.Float64()*20
	}
	series := make([][]float64, 0, 30)
	for i := 0; i < 30; i++ {
		next := make([]float64, n)
		turbulent := i >= 10 && i < 15
		for j := range next {
			if turbulent {
				next[j] = data[j] * math.Exp(rng.NormFloat64()*0.5)
			} else {
				next[j] = data[j] * (1 + rng.NormFloat64()*0.0005)
			}
		}
		data = next
		series = append(series, next)
	}

	fmt.Println("iter  phase      decision  reason")
	for i, d := range series {
		decs, err := w.Append(i, map[string][]float64{"v": d})
		if err != nil {
			log.Fatal(err)
		}
		phase := "quiet"
		if i >= 10 && i < 15 {
			phase = "turbulent"
		}
		kind := "delta"
		if decs["v"].Full {
			kind = "FULL"
		}
		fmt.Printf("%-5d %-10s %-9s %s\n", i, phase, kind, decs["v"].Reason)
	}

	stats := w.Stats()
	fmt.Printf("\n%d fulls, %d deltas; full reasons: %v\n", stats.Fulls, stats.Deltas, stats.FullReasons)

	// Every iteration remains restartable within the budget.
	worst := 0.0
	for i, want := range series {
		rec, err := st.Restart("v", i)
		if err != nil {
			log.Fatal(err)
		}
		for j := range rec {
			rel := math.Abs(rec[j]-want[j]) / math.Abs(want[j])
			if rel > worst {
				worst = rel
			}
		}
	}
	fmt.Printf("worst restart error across all 30 iterations: %.4f%% (budget 0.5%%)\n", worst*100)
}
