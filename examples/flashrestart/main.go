// flashrestart reproduces the paper's §III-G scenario end to end: a
// FLASH-like simulation checkpoints through a NUMARCK store, "crashes",
// restarts from the reconstructed (approximated) state, and continues —
// and we measure how far the restarted run drifts from an uninterrupted
// golden run.
//
// Run with: go run ./examples/flashrestart
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"numarck"
	"numarck/internal/sim/flash"
)

const (
	checkpoints  = 8 // checkpoints before the "crash"
	stepsPer     = 3 // simulation steps between checkpoints
	restartAt    = 4 // checkpoint index to restart from
	continueCkpt = 4 // checkpoints to run after restart
)

func main() {
	dir, err := os.MkdirTemp("", "numarck-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Golden run: simulate straight through, keeping every snapshot.
	golden, err := flash.New(flash.Config{BlocksX: 4, BlocksY: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	var snaps []*flash.Snapshot
	for c := 0; c < checkpoints+continueCkpt; c++ {
		golden.StepN(stepsPer)
		snaps = append(snaps, golden.Checkpoint())
	}

	// Checkpointed run: write the first snapshot losslessly and the
	// rest as NUMARCK deltas with a 0.1 % bound.
	st, err := numarck.CreateStore(dir, numarck.Options{
		ErrorBound: 0.001,
		IndexBits:  8,
		Strategy:   numarck.Clustering,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			log.Print(err)
		}
	}()
	w := numarck.NewWriter(st, 0)
	var storeBytes, rawBytes int64
	for c := 0; c <= restartAt; c++ {
		if _, err := w.Append(c, snaps[c].Vars); err != nil {
			log.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			storeBytes += info.Size()
		}
	}
	rawBytes = int64(restartAt+1) * int64(len(flash.Variables)) * int64(len(snaps[0].Vars["dens"])) * 8
	fmt.Printf("checkpoint store: %d bytes for %d checkpoints (raw would be %d, %.1f%% saved)\n",
		storeBytes, restartAt+1, rawBytes, float64(rawBytes-storeBytes)/float64(rawBytes)*100)

	// "Crash." Reconstruct the state at the restart checkpoint from
	// the store: one lossless full + restartAt approximated deltas.
	recVars := map[string][]float64{}
	for _, v := range flash.Variables {
		data, err := st.Restart(v, restartAt)
		if err != nil {
			log.Fatal(err)
		}
		recVars[v] = data
	}

	// Restart the simulation from the reconstruction and continue.
	restarted, err := flash.New(flash.Config{BlocksX: 4, BlocksY: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := restarted.Restart(&flash.Snapshot{
		Step: snaps[restartAt].Step,
		Time: snaps[restartAt].Time,
		Vars: recVars,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrestarted from checkpoint %d; drift vs golden run:\n", restartAt)
	fmt.Printf("%-12s %-15s %-15s\n", "checkpoint", "mean dens err", "max dens err")
	for k := 1; k <= continueCkpt; k++ {
		restarted.StepN(stepsPer)
		got := restarted.Checkpoint()
		want := snaps[restartAt+k]
		mean, max := fieldError(want.Vars["dens"], got.Vars["dens"])
		fmt.Printf("%-12d %-15s %-15s\n", restartAt+k,
			fmt.Sprintf("%.6f%%", mean*100), fmt.Sprintf("%.6f%%", max*100))
	}
	fmt.Println("\nthe simulation runs to completion from approximated state — the paper's key §III-G result")
}

// fieldError returns mean and max relative error scaled by the field's
// magnitude.
func fieldError(want, got []float64) (mean, max float64) {
	var scale float64
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	var sum float64
	for i := range want {
		e := math.Abs(got[i]-want[i]) / scale
		sum += e
		if e > max {
			max = e
		}
	}
	return sum / float64(len(want)), max
}
