// precisionsweep shows how NUMARCK's two user knobs trade storage for
// accuracy — the paper's Fig. 6 (index bits B) and Fig. 7 (error bound
// E) in miniature, on a synthetic rlds series.
//
// Run with: go run ./examples/precisionsweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"numarck"
	"numarck/internal/sim/climate"
)

func main() {
	gen, err := climate.NewGenerator("rlds", 3)
	if err != nil {
		log.Fatal(err)
	}
	prev := gen.Iteration(20)
	cur := gen.Iteration(21)

	fmt.Println("sweep 1: index bits B (equal-width, E = 0.1%) — Fig. 6")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  B\tbins\tincompressible\tsaved\tmean err")
	for _, b := range []int{6, 8, 9, 10, 12} {
		enc, err := numarck.Encode(prev, cur, numarck.Options{
			ErrorBound: 0.001,
			IndexBits:  b,
			Strategy:   numarck.EqualWidth,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio, _ := enc.CompressionRatio()
		fmt.Fprintf(tw, "  %d\t%d\t%.2f%%\t%.2f%%\t%.5f%%\n",
			b, enc.Opt.NumBins(), enc.Gamma()*100, ratio, enc.MeanErrorRate()*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsweep 2: error bound E (clustering, B = 8) — Fig. 7")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  E\tincompressible\tsaved\tmean err\tmax err")
	for _, e := range []float64{0.0005, 0.001, 0.002, 0.005, 0.01} {
		enc, err := numarck.Encode(prev, cur, numarck.Options{
			ErrorBound: e,
			IndexBits:  8,
			Strategy:   numarck.Clustering,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio, _ := enc.CompressionRatio()
		fmt.Fprintf(tw, "  %.2f%%\t%.2f%%\t%.2f%%\t%.5f%%\t%.5f%%\n",
			e*100, enc.Gamma()*100, ratio, enc.MeanErrorRate()*100, enc.MaxErrorRate()*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmax err never exceeds E: the bound is enforced per point, not on average")
}
