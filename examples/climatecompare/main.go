// climatecompare compares NUMARCK's three distribution-learning
// strategies and the two baseline compressors (B-Splines, ISABELA) on a
// hard synthetic CMIP5 variable — a miniature of the paper's §III-C and
// §III-F studies.
//
// Run with: go run ./examples/climatecompare [variable]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"numarck"
	"numarck/internal/baseline/bsplines"
	"numarck/internal/baseline/isabela"
	"numarck/internal/sim/climate"
	"numarck/internal/stats"
)

func main() {
	variable := "abs550aer"
	if len(os.Args) > 1 {
		variable = os.Args[1]
	}
	gen, err := climate.NewGenerator(variable, 1)
	if err != nil {
		log.Fatal(err)
	}
	prev := gen.Iteration(10)
	cur := gen.Iteration(11)
	fmt.Printf("variable %s: %d points per iteration\n\n", variable, len(cur))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tsaved\tincompressible\tPearson rho\tRMSE")

	// NUMARCK, all three strategies at E = 0.5 % as in Table I.
	for _, s := range numarck.Strategies {
		enc, err := numarck.Encode(prev, cur, numarck.Options{
			ErrorBound: 0.005,
			IndexBits:  9,
			Strategy:   s,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := enc.Decode(prev)
		if err != nil {
			log.Fatal(err)
		}
		ratio, _ := enc.CompressionRatio()
		rho, _ := stats.Pearson(cur, rec)
		xi, _ := stats.RMSE(cur, rec)
		fmt.Fprintf(tw, "NUMARCK/%s\t%.2f%%\t%.2f%%\t%.4f\t%.4g\n",
			s, ratio, enc.Gamma()*100, rho, xi)
	}

	// ISABELA baseline (W0 = 512, 30 coefficients).
	isa, err := isabela.Compress(cur, 512, isabela.DefaultCoefficients)
	if err != nil {
		log.Fatal(err)
	}
	isaRec, err := isa.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	rho, _ := stats.Pearson(cur, isaRec)
	xi, _ := stats.RMSE(cur, isaRec)
	fmt.Fprintf(tw, "ISABELA\t%.2f%%\t-\t%.4f\t%.4g\n", isa.CompressionRatio(), rho, xi)

	// B-Splines baseline (P_S = 0.8 n).
	bs, err := bsplines.Compress(cur, bsplines.DefaultControlFraction)
	if err != nil {
		log.Fatal(err)
	}
	bsRec := bs.Decompress()
	rho, _ = stats.Pearson(cur, bsRec)
	xi, _ = stats.RMSE(cur, bsRec)
	fmt.Fprintf(tw, "B-Splines\t%.2f%%\t-\t%.4f\t%.4g\n", bs.CompressionRatio(), rho, xi)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNUMARCK additionally guarantees a point-wise error bound; the baselines do not.")
}
