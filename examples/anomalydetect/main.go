// anomalydetect demonstrates the paper's §V extension: using the
// learned change-ratio distributions to catch silent data corruption.
// It runs the FLASH-like simulation, injects single bit flips of
// varying severity into one checkpoint, and shows which the
// distribution monitor catches.
//
// Run with: go run ./examples/anomalydetect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"numarck/internal/anomaly"
	"numarck/internal/sim/flash"
)

func main() {
	sim, err := flash.New(flash.Config{BlocksX: 4, BlocksY: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	sim.StepN(30) // let the blast transient relax
	var snaps [][]float64
	for c := 0; c < 10; c++ {
		sim.StepN(3)
		snaps = append(snaps, sim.Checkpoint().Vars["dens"])
	}

	// Inject bit flips of decreasing severity into the last
	// checkpoint and test each against a detector warmed on the clean
	// history.
	rng := rand.New(rand.NewSource(1))
	fmt.Println("bit  flipped value change        detected")
	for _, bit := range []uint{63, 62, 60, 55, 51, 40, 20, 2} {
		data := append([]float64(nil), snaps[9]...)
		idx := rng.Intn(len(data))
		orig, err := anomaly.InjectBitFlip(data, idx, bit)
		if err != nil {
			log.Fatal(err)
		}
		// A fresh detector with the same history for each trial.
		trial := anomaly.New(anomaly.Config{TailFactor: 4})
		for i := 1; i < 9; i++ {
			if _, err := trial.Observe(snaps[i-1], snaps[i]); err != nil {
				log.Fatal(err)
			}
		}
		rep, err := trial.Observe(snaps[8], data)
		if err != nil {
			log.Fatal(err)
		}
		caught := false
		for _, j := range rep.Flagged {
			if j == idx {
				caught = true
			}
		}
		fmt.Printf("%-4d %-12.4g -> %-12.4g %v\n", bit, orig, data[idx], caught)
	}
	fmt.Println("\nhigh exponent/sign flips are flagged; low mantissa flips are below physics noise (and harmless)")
}
