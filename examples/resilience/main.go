// resilience is the full end-to-end demonstration of what NUMARCK is
// for (§I Q6): a simulation runs under the checkpoint/restart runner
// with adaptive scheduling and silent-data-corruption screening,
// crashes mid-flight, and is recovered from the compressed checkpoint
// store to finish the run.
//
// Run with: go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"os"

	"numarck"
	"numarck/internal/adaptive"
	"numarck/internal/anomaly"
	"numarck/internal/checkpoint"
	"numarck/internal/runner"
	"numarck/internal/sim/flash"
)

func main() {
	dir, err := os.MkdirTemp("", "numarck-resilience-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st, err := checkpoint.Create(dir, numarck.Options{
		ErrorBound: 0.001,
		IndexBits:  8,
		Strategy:   numarck.Clustering,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			log.Print(err)
		}
	}()

	newSim := func() *flash.Sim {
		sim, err := flash.New(flash.Config{BlocksX: 3, BlocksY: 3, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		return sim
	}
	cfg := runner.Config{
		Adaptive: &adaptive.Config{ErrorBudget: 0.01},
		Monitor:  &anomaly.Config{},
	}

	// Phase 1: run 8 checkpointed iterations, then "crash".
	r1 := runner.New(runner.NewFlashSim(newSim(), 3), st, cfg)
	rep1, err := r1.Run(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: iterations %d..%d checkpointed (%d fulls, %d deltas, %d anomalies)\n",
		rep1.FirstIteration, rep1.LastIteration, rep1.Fulls, rep1.Deltas, len(rep1.Anomalies))
	fmt.Println("phase 1: simulated CRASH — process state lost, only the store survives")

	// Show what survived.
	stats, err := st.Stats()
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, s := range stats {
		total += s.TotalBytes()
	}
	cells := 3 * 3 * 16 * 16
	raw := int64(8 * cells * 10 * 8) // 8 iterations x 10 variables
	fmt.Printf("store: %d bytes on disk for %d iterations x 10 variables (raw: %d, %.1f%% saved)\n",
		total, 8, raw, float64(raw-total)/float64(raw)*100)

	// Phase 2: recover into a brand-new process/simulator and finish.
	r2 := runner.New(runner.NewFlashSim(newSim(), 3), st, cfg)
	recovered, err := r2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: recovered simulation state from checkpoint %d\n", recovered)
	rep2, err := r2.Run(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: continued through iteration %d (%d fulls, %d deltas)\n",
		rep2.LastIteration, rep2.Fulls, rep2.Deltas)

	// Prove the extended chain is intact.
	issues, err := st.Verify()
	if err != nil {
		log.Fatal(err)
	}
	if len(issues) > 0 {
		log.Fatalf("store verification failed: %v", issues)
	}
	latest, err := st.LatestRestorable("dens")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store verified clean; dens restorable through iteration %d\n", latest)
}
