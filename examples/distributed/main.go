// distributed demonstrates rank-parallel NUMARCK encoding and the
// data-movement trade-off the paper's exascale motivation is about:
// learning one global table costs a few reductions per k-means
// iteration, while per-rank local tables cost nothing on the wire but
// store R tables.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"numarck"
	"numarck/internal/dist"
	"numarck/internal/sim/climate"
)

func main() {
	gen, err := climate.NewGenerator("mc", 1)
	if err != nil {
		log.Fatal(err)
	}
	prev := gen.Iteration(5)
	cur := gen.Iteration(6)
	raw := 8 * len(cur)
	fmt.Printf("variable mc: %d points (%d raw bytes) partitioned across ranks\n\n", len(cur), raw)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ranks\tmode\tbytes moved\ttable entries\tincompressible\tsaved")
	for _, ranks := range []int{1, 4, 16} {
		for _, mode := range []dist.TableMode{dist.LocalTables, dist.GlobalTable} {
			res, err := dist.Encode(prev, cur, dist.Config{
				Ranks: ranks,
				Mode:  mode,
				Opt: numarck.Options{
					ErrorBound: 0.001,
					IndexBits:  8,
					Strategy:   numarck.Clustering,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.2f%%\t%.2f%%\n",
				ranks, mode, res.BytesMoved, res.TableEntries,
				res.Gamma()*100, res.CompressionRatio())
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nglobal-table traffic is O(k · iterations · log ranks), independent of the data size:")
	fmt.Println("negligible at production scale (GBs per rank), while local tables move nothing and")
	fmt.Println("instead store one table per rank — cheaper here, costlier as ranks grow")
}
