// Quickstart: compress one checkpoint transition with NUMARCK and show
// the guaranteed point-wise error bound.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"numarck"
)

func main() {
	// Two consecutive "checkpoints" of a fake simulation: 100k points
	// whose values drift by small relative changes, with a few percent
	// of points changing sharply (the hard tail).
	rng := rand.New(rand.NewSource(42))
	n := 100_000
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 50 + 100*rng.Float64()
		change := rng.NormFloat64() * 0.002 // most points: ~0.2 %
		if rng.Float64() < 0.03 {
			change = rng.NormFloat64() * 0.3 // a few: up to tens of %
		}
		cur[i] = prev[i] * (1 + change)
	}

	// Compress the transition with a 0.1 % point-wise error bound and
	// 8-bit indices (255 learned bins), using the paper's best
	// strategy: k-means clustering of the change ratios.
	enc, err := numarck.Encode(prev, cur, numarck.Options{
		ErrorBound: 0.001,
		IndexBits:  8,
		Strategy:   numarck.Clustering,
	})
	if err != nil {
		log.Fatal(err)
	}

	ratio, err := enc.CompressionRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("points:               %d\n", enc.N)
	fmt.Printf("incompressible:       %.2f%% (stored exactly)\n", enc.Gamma()*100)
	fmt.Printf("mean ratio error:     %.5f%%\n", enc.MeanErrorRate()*100)
	fmt.Printf("max ratio error:      %.5f%% (bound: 0.1%%)\n", enc.MaxErrorRate()*100)
	fmt.Printf("compression (Eq. 3):  %.2f%% saved\n", ratio)
	fmt.Printf("payload:              %d bytes (raw: %d)\n", enc.EncodedSizeBytes(), 8*n)

	// Decompress and verify the guarantee ourselves: every point's
	// reconstructed change ratio is within the bound of the true one.
	rec, err := enc.Decode(prev)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range cur {
		trueRatio := (cur[i] - prev[i]) / prev[i]
		recRatio := (rec[i] - prev[i]) / prev[i]
		if d := math.Abs(recRatio - trueRatio); d > worst {
			worst = d
		}
	}
	fmt.Printf("verified max error:   %.5f%% <= 0.1%%\n", worst*100)
}
