package numarck_test

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"numarck"
)

// ExampleEncode compresses one checkpoint transition and shows the
// point-wise error guarantee.
func ExampleEncode() {
	// Previous and current checkpoint of a toy simulation: every point
	// grows by exactly 1 %.
	prev := make([]float64, 1000)
	cur := make([]float64, 1000)
	for i := range prev {
		prev[i] = 100 + float64(i)
		cur[i] = prev[i] * 1.01
	}

	enc, err := numarck.Encode(prev, cur, numarck.Options{
		ErrorBound: 0.001, // 0.1 %
		IndexBits:  8,
		Strategy:   numarck.Clustering,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rec, err := enc.Decode(prev)
	if err != nil {
		fmt.Println(err)
		return
	}

	worst := 0.0
	for i := range cur {
		trueRatio := (cur[i] - prev[i]) / prev[i]
		recRatio := (rec[i] - prev[i]) / prev[i]
		if d := math.Abs(recRatio - trueRatio); d > worst {
			worst = d
		}
	}
	fmt.Printf("incompressible: %.0f%%\n", enc.Gamma()*100)
	fmt.Printf("bound holds: %v\n", worst <= 0.001)
	// Output:
	// incompressible: 0%
	// bound holds: true
}

// ExampleCreateStore writes a chained checkpoint store and restarts
// from it.
func ExampleCreateStore() {
	dir, err := os.MkdirTemp("", "numarck-example-")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	st, err := numarck.CreateStore(filepath.Join(dir, "ck"), numarck.Options{
		ErrorBound: 0.001,
		IndexBits:  8,
		Strategy:   numarck.Clustering,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	// Three iterations: the first is stored losslessly, the rest as
	// NUMARCK deltas.
	w := numarck.NewWriter(st, 0)
	data := []float64{10, 20, 30, 40}
	for iter := 0; iter < 3; iter++ {
		if iter > 0 {
			for i := range data {
				data[i] *= 1.005
			}
		}
		if _, err := w.Append(iter, map[string][]float64{"temp": data}); err != nil {
			fmt.Println(err)
			return
		}
	}

	rec, err := st.Restart("temp", 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("restarted %d points, first = %.2f\n", len(rec), rec[0])
	// Output:
	// restarted 4 points, first = 10.10
}

// ExampleStreamEncoder encodes a transition out-of-core in fixed-size
// chunks and reconstructs it with the streaming decoder. Sources here
// are in-memory slices; numarck.OpenRaw streams files the same way.
func ExampleStreamEncoder() {
	prev := make([]float64, 1000)
	cur := make([]float64, 1000)
	for i := range prev {
		prev[i] = 100 + float64(i)
		cur[i] = prev[i] * 1.01 // every point grows by 1 %
	}

	enc := numarck.StreamEncoder{
		Opt:    numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.EqualWidth},
		Config: numarck.StreamConfig{ChunkPoints: 256}, // 4 chunks of <= 256 points
	}
	var ckpt bytes.Buffer
	res, err := enc.Encode(&ckpt, "temp", 1, numarck.SliceSource(prev), numarck.SliceSource(cur))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("encoded %d points in %d chunks\n", res.N, res.ChunkCount)

	// Streaming decode: chunks arrive in point order.
	var rec []float64
	dec := numarck.StreamDecoder{}
	err = dec.Decode(bytes.NewReader(ckpt.Bytes()), int64(ckpt.Len()), numarck.SliceSource(prev), func(vals []float64) error {
		rec = append(rec, vals...)
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	worst := 0.0
	for i := range cur {
		trueRatio := (cur[i] - prev[i]) / prev[i]
		recRatio := (rec[i] - prev[i]) / prev[i]
		if d := math.Abs(recRatio - trueRatio); d > worst {
			worst = d
		}
	}
	fmt.Printf("reconstructed %d points, bound holds: %v\n", len(rec), worst <= 0.001)
	// Output:
	// encoded 1000 points in 4 chunks
	// reconstructed 1000 points, bound holds: true
}

// ExampleParseStrategy converts CLI strings to strategies.
func ExampleParseStrategy() {
	s, err := numarck.ParseStrategy("log-scale")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(s)
	// Output:
	// log-scale
}

// ExampleStreamEncoder_tuning shows the four tuning knobs of the
// streaming pipeline and how to read the resolved run shape back from
// the result: ChunkPoints sets the window size, Workers the number of
// chunks in flight, BudgetBytes a hard cap on buffer memory (workers
// are shrunk first, then chunk size), and MaxTableInput bounds the
// table-learning stage's reservoir for a hard memory ceiling at the
// cost of byte-identity with the in-memory encoder. The same knobs are
// the numarck CLI's -chunk, -workers, and -budget flags; PERF.md walks
// through choosing them.
func ExampleStreamEncoder_tuning() {
	prev := make([]float64, 20000)
	cur := make([]float64, 20000)
	for i := range prev {
		prev[i] = 100 + float64(i%50)
		cur[i] = prev[i] * 1.01
	}

	const budget = 256 << 10 // 256 KiB of buffer memory, enforced
	enc := numarck.StreamEncoder{
		Opt: numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.EqualWidth},
		Config: numarck.StreamConfig{
			ChunkPoints:   4096,
			Workers:       4,
			BudgetBytes:   budget,
			MaxTableInput: 4096,
		},
	}
	var ckpt bytes.Buffer
	res, err := enc.Encode(&ckpt, "temp", 1, numarck.SliceSource(prev), numarck.SliceSource(cur))
	if err != nil {
		fmt.Println(err)
		return
	}
	// Four workers' buffers would blow the budget, so the resolver
	// trades parallelism for memory before touching the chunk size.
	fmt.Printf("resolved shape: %d worker(s), %d-point chunks, %d chunks\n", res.Workers, res.ChunkPoints, res.ChunkCount)
	fmt.Printf("buffer footprint: %d bytes (budget %d)\n", res.PeakBufferBytes, budget)
	fmt.Printf("table input: kept %d of %d ratios (thinned: %v)\n", res.TableInputUsed, res.TableInputTotal, res.TableThinned)
	// Output:
	// resolved shape: 1 worker(s), 4096-point chunks, 5 chunks
	// buffer footprint: 188416 bytes (budget 262144)
	// table input: kept 2500 of 20000 ratios (thinned: true)
}
