package numarck_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"numarck"
	"numarck/internal/rawio"
)

// TestStreamFilesRoundTrip drives the file-to-file streaming API:
// encode two raw files into a chunked checkpoint under a small memory
// budget, decode it back, and check the error bound point-wise.
func TestStreamFilesRoundTrip(t *testing.T) {
	const n = 50_000
	rng := rand.New(rand.NewSource(17))
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 1 + rng.Float64()
		cur[i] = prev[i] * (1 + 0.02*rng.NormFloat64())
	}
	dir := t.TempDir()
	prevPath := filepath.Join(dir, "prev.f64")
	curPath := filepath.Join(dir, "cur.f64")
	ckptPath := filepath.Join(dir, "ckpt.nmk")
	outPath := filepath.Join(dir, "out.f64")
	if err := rawio.WriteFile(prevPath, prev); err != nil {
		t.Fatal(err)
	}
	if err := rawio.WriteFile(curPath, cur); err != nil {
		t.Fatal(err)
	}

	enc := numarck.StreamEncoder{
		Opt:    numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.EqualWidth},
		Config: numarck.StreamConfig{BudgetBytes: 256 << 10, Workers: 2},
	}
	res, err := enc.EncodeFiles(ckptPath, "v", 1, prevPath, curPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n || res.ChunkCount < 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.PeakBufferBytes > 256<<10 {
		t.Fatalf("peak buffers %d exceed budget", res.PeakBufferBytes)
	}

	got, err := numarck.StreamDecoder{}.DecodeFiles(ckptPath, prevPath, outPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("decoded %d points", got)
	}
	rec, err := rawio.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		trueRatio := (cur[i] - prev[i]) / prev[i]
		recRatio := (rec[i] - prev[i]) / prev[i]
		if math.Abs(recRatio-trueRatio) > 0.001+1e-12 {
			t.Fatalf("point %d violates the bound", i)
		}
	}
}
