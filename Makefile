# NUMARCK verification harness. `make verify` is the tier-1 recipe:
# build, go vet, the repo's own static analyzers, unit tests, the race
# detector over the goroutine-parallel paths, and a short fuzz smoke
# over the serialization parsers.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race fuzz-smoke verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/numarcklint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One short burst per fuzz target; -run=NONE skips the unit tests so
# the smoke stays fast. Targets: bit-level pack/unpack round-trips and
# the checkpoint parsers on corrupt input.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/bitpack
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip64$$ -fuzztime=$(FUZZTIME) ./internal/bitpack
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalDelta$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalFull$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint

verify: build vet lint test race fuzz-smoke
