# NUMARCK verification harness. `make verify` is the tier-1 recipe:
# build, go vet, the repo's own static analyzers, unit tests, the race
# detector over the goroutine-parallel paths, and a short fuzz smoke
# over the serialization parsers.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint lint-fix sarif docs test race race-pipeline crash-test fuzz-smoke serve-smoke chaos-smoke verify bench bench-smoke bench-compare

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/numarcklint ./...

# Apply the analyzers' suggested fixes (error-verb rewrites, stale
# suppression deletions), then report whatever remains.
lint-fix:
	$(GO) run ./cmd/numarcklint -fix ./...

# Lint with a SARIF 2.1.0 log on the side, for CI code-scanning
# annotations. Exit status still reflects unsuppressed findings.
sarif:
	$(GO) run ./cmd/numarcklint -sarif numarcklint.sarif ./...

# Documentation lint alone: fails when a package lacks a package
# comment or an exported identifier lacks a doc comment.
docs:
	$(GO) run ./cmd/numarcklint -only doccomment ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race run over the goroutine-heavy pipeline and store packages
# with a higher -count: the bounded-worker pool and the crash-injection
# store are where interleavings actually vary between runs.
race-pipeline:
	$(GO) test -race -count=3 ./internal/chunk ./internal/checkpoint

# The seeded crash-consistency matrix: fault-injection unit tests plus
# the kill-at-every-mutating-op store matrices — checkpoint write,
# store create, and writer open (lock takeover + index republication) —
# and the salvage-decode tests. Deterministic (seeded schedules, no
# timing dependence) and fast enough to run on every change.
crash-test:
	$(GO) test -count=1 -run 'TestInjector|TestWriteFileAtomic|TestOS' ./internal/faultfs
	$(GO) test -count=1 -run 'TestCrash|TestRecoveryScan|TestDecodeRecover|TestRestartSalvage' ./internal/checkpoint
	$(GO) test -count=1 -run 'TestWriteFileCrashMatrix' ./internal/rawio

# One short burst per fuzz target; -run=NONE skips the unit tests so
# the smoke stays fast. Targets: bit-level pack/unpack round-trips, the
# checkpoint parsers on corrupt input, and the degraded-mode decode.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/bitpack
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip64$$ -fuzztime=$(FUZZTIME) ./internal/bitpack
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalDelta$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalDeltaV2$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalFull$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -run=NONE -fuzz=FuzzRecoverDeltaV2$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -run=NONE -fuzz=FuzzParseChainIndex$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint

# The checkpoint service end-to-end smoke, under the race detector: a
# 3-delta chain round-trips through the HTTP API byte-identical to the
# library path, /metrics reconciles bytes_written against the on-disk
# store, ?recover=1 salvages injected corruption, and over-capacity
# requests get 429 — plus the daemon's SIGTERM drain leaving a clean
# store.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke|TestServeAdmission|TestServeLocked|TestServeDrain' ./internal/server
	$(GO) test -race -count=1 -run 'TestDaemonGracefulDrain' ./cmd/numarckd

# The chaos matrix under the race detector: a fault-free baseline
# exchange (commits, a resumable upload, restart, reconstruction)
# fixes the store's canonical bytes, then every request index x every
# fault mode (refused, bare 503, cut mid-request, cut mid-response)
# reruns the exchange through the retrying client on a fresh server —
# and the store must end byte-identical, with one journal add per file
# and nothing left for the janitor. Seeded and sleep-free: the whole
# matrix stays inside a few seconds.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/server

verify: build vet lint docs test race crash-test fuzz-smoke serve-smoke chaos-smoke

# Codec benchmarks: in-memory vs streaming encode/decode per strategy
# (machine-readable BENCH_codec.json) plus the Go micro-benchmarks of
# the encode/decode/stream paths.
bench:
	$(GO) run ./cmd/experiments -exp codec-bench -json BENCH_codec.json
	$(GO) test -run=NONE -bench='Encode|Decode' -benchmem .

# One iteration of everything bench runs, for CI: catches bit-rot in
# the benchmark code without timing anything.
bench-smoke:
	$(GO) run ./cmd/experiments -exp codec-bench -points 20000 -iters 1
	$(GO) test -run=NONE -bench='Encode|Decode' -benchtime=1x .

# Diff two codec bench result files: per-strategy headline deltas plus
# the streaming per-stage breakdown. Informational — never fails on a
# regression, just renders it. Usage:
#   make bench-compare OLD=BENCH_codec.json NEW=/tmp/BENCH_new.json
OLD ?= BENCH_codec.json
NEW ?= BENCH_codec.new.json
bench-compare:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)
